"""Project call graph over the parsed package.

Nodes are function definitions (methods, nested defs, module-level
lambdas get synthetic nodes); edges are *possible* calls, resolved
conservatively:

* plain names — local defs, module-level defs, imported functions,
  class constructors (edge to ``__init__``);
* ``self.m(...)`` / ``cls.m(...)`` — lookup in the enclosing class,
  then internal bases;
* ``obj.m(...)`` — the receiver-tail hint table first (``clock`` is a
  :class:`CycleLedger`, ``tracer`` an ``EventTracer``, ...: the same
  duck-typed hook slots the per-file rules key on), else every internal
  method named ``m`` in a layer the caller's layer may import (the
  layering map from :mod:`repro.lint.rules` prunes impossible edges);
  method names that shadow builtin container ops (``get``, ``append``,
  ...) resolve only through hints/``self`` — never by bare name;
* references that merely *take* a function (callbacks, registry dict
  literals) are address-taken edges, and reading a module-level name
  whose initializer references functions (the ``SPECS`` registry
  pattern) links to every function that initializer mentions.

The graph over-approximates: an edge means "this call *may* land
there", which is the right direction for reachability proofs — a
property verified on the over-approximation holds on the real program.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.base import FileContext, dotted_name, receiver_tail
from repro.lint.rules import _BANNED_IMPORTS

#: Receiver-name -> class-name hints for attribute calls.  These are
#: the machine's well-known slots and hook attributes; the per-file
#: hook-guard rule and the ledger/event closure passes key on the same
#: names, so the vocabulary is already load-bearing in this repo.
RECEIVER_CLASS_HINTS: Dict[str, Tuple[str, ...]] = {
    "clock": ("CycleLedger",),
    "ledger": ("CycleLedger",),
    "tracer": ("EventTracer",),
    "sanitizer": ("Sanitizer",),
    "monitor": ("HardwareMonitor",),
    "machine": ("MachineModel",),
    "kernel": ("Kernel",),
    "htab": ("HashedPageTable",),
    "tlb": ("Tlb",),
    "sampler": ("TimeSeriesSampler",),
    "profiler": ("CycleProfiler",),
    "shadow": ("ShadowMMU",),
    "sim": ("Simulator",),
    "simulator": ("Simulator",),
    "executive": ("Executive",),
    "trace": ("WorkingSetTrace",),
    "reporter": ("ViolationReporter",),
    "obs": ("Observability",),
}

#: Method names that are overwhelmingly builtin container/str/file ops.
#: Resolving these by bare name would wire ``d.get(...)`` to every
#: internal ``get`` method; they resolve only via ``self`` or a
#: receiver hint.
AMBIENT_METHODS: FrozenSet[str] = frozenset({
    "append", "appendleft", "add", "clear", "copy", "count", "decode",
    "discard", "encode", "endswith", "extend", "format", "get", "index",
    "insert", "items", "join", "keys", "lower", "lstrip", "most_common",
    "pop", "popitem", "read", "readline", "readlines", "remove",
    "replace", "reverse", "rstrip", "setdefault", "sort", "split",
    "splitlines", "startswith", "strip", "update", "upper", "values",
    "write", "writelines", "close", "open", "exists", "mkdir", "glob",
    "rglob", "resolve", "relative_to", "as_posix", "read_text",
    "write_text", "read_bytes", "is_dir", "is_file", "unlink", "touch",
    "hexdigest", "total_seconds", "group", "match", "search", "findall",
    "sub", "fullmatch", "dump", "dumps", "load", "loads", "flush",
})


@dataclass
class FunctionInfo:
    """One function node in the project call graph."""

    #: Fully qualified name, e.g. ``repro.obs.events.EventTracer.instant``.
    qualname: str
    #: Dotted module, e.g. ``repro.obs.events``.
    module: str
    #: Posix path relative to the package root.
    rel: str
    layer: str
    #: Bare function name (``instant``).
    name: str
    #: Enclosing class name, or ``None`` for module-level functions.
    cls: Optional[str]
    node: ast.AST
    line: int


@dataclass
class ClassInfo:
    """One class: its methods by name and its base-class names."""

    qualname: str
    module: str
    name: str
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Base names as written (``Rule``, ``base.Rule``).
    bases: List[str] = field(default_factory=list)


class CallGraph:
    """The resolved graph plus the indexes needed to query it."""

    def __init__(self) -> None:
        #: qualname -> FunctionInfo.
        self.functions: Dict[str, FunctionInfo] = {}
        #: qualname -> sorted callee qualnames.
        self.edges: Dict[str, List[str]] = {}
        #: class qualname -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        #: bare class name -> class qualnames (for hint resolution).
        self.classes_by_name: Dict[str, List[str]] = {}
        #: method name -> function qualnames (for name-based resolution).
        self.methods_by_name: Dict[str, List[str]] = {}
        #: (module, module-level name) -> function qualnames referenced
        #: by that name's initializer (the registry-literal pattern).
        self.global_refs: Dict[Tuple[str, str], List[str]] = {}

    # -- queries -------------------------------------------------------------

    def callees(self, qualname: str) -> List[str]:
        return self.edges.get(qualname, [])

    def reachable(self, roots: Set[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = sorted(root for root in roots if root in self.functions)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.callees(current):
                if callee not in seen:
                    stack.append(callee)
        return seen

    def shortest_chain(
        self, roots: Set[str], target: str
    ) -> Optional[List[str]]:
        """A shortest root->target call chain (BFS, deterministic)."""
        valid = sorted(root for root in roots if root in self.functions)
        if target in valid:
            return [target]
        parents: Dict[str, str] = {}
        frontier = list(valid)
        seen = set(valid)
        while frontier:
            nxt: List[str] = []
            for current in frontier:
                for callee in self.callees(current):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parents[callee] = current
                    if callee == target:
                        chain = [callee]
                        while chain[-1] in parents:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    nxt.append(callee)
            frontier = nxt
        return None


def build_callgraph(contexts: List[FileContext]) -> CallGraph:
    graph = CallGraph()
    builder = _Builder(graph, contexts)
    builder.index()
    builder.link()
    return graph


# -- the builder -------------------------------------------------------------


def _layer_allowed(caller_layer: str, callee_layer: str) -> bool:
    """Whether the layering map permits a caller->callee edge.

    Mirrors :class:`~repro.lint.rules.LayeringRule`: ``hw`` cannot name
    anything above it, ``kernel`` cannot name ``sim``/``obs``/..., and
    only top-level modules and ``lint`` itself may reach ``lint``.
    (Hook edges — kernel calling an attached tracer — bypass this via
    the receiver hints, exactly like the runtime bypasses it via
    duck-typed slots.)
    """
    banned: Set[str] = set(_BANNED_IMPORTS.get(caller_layer, frozenset()))
    if caller_layer not in ("", "lint"):
        banned.add("lint")
    return callee_layer not in banned


class _Scope:
    """One lexical scope while walking a module."""

    def __init__(
        self,
        kind: str,
        name: str,
        qualname: str,
        info: Optional[FunctionInfo] = None,
    ) -> None:
        self.kind = kind  # "module" | "class" | "function"
        self.name = name
        self.qualname = qualname
        self.info = info


class _Builder:
    def __init__(self, graph: CallGraph, contexts: List[FileContext]) -> None:
        self.graph = graph
        self.contexts = contexts
        #: module -> {local alias -> ("module", dotted) | ("name", module, name)}
        self.imports: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        #: module -> {module-level def/class name -> qualname}.
        self.module_defs: Dict[str, Dict[str, str]] = {}
        self.module_classes: Dict[str, Dict[str, str]] = {}
        #: every known module dotted name.
        self.modules: Set[str] = set()
        self._lambda_counter = 0

    # -- pass 1: index every definition --------------------------------------

    def index(self) -> None:
        for ctx in self.contexts:
            self.modules.add(ctx.module)
        for ctx in self.contexts:
            self.imports[ctx.module] = self._import_map(ctx)
            self.module_defs.setdefault(ctx.module, {})
            self.module_classes.setdefault(ctx.module, {})
            self._index_body(ctx, ctx.tree.body, [ctx.module], None)

    def _index_body(
        self,
        ctx: FileContext,
        body: List[ast.stmt],
        path: List[str],
        cls: Optional[ClassInfo],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(path + [stmt.name])
                info = FunctionInfo(
                    qualname=qualname,
                    module=ctx.module,
                    rel=ctx.rel,
                    layer=ctx.layer,
                    name=stmt.name,
                    cls=cls.name if cls is not None else None,
                    node=stmt,
                    line=stmt.lineno,
                )
                self.graph.functions[qualname] = info
                if cls is not None:
                    cls.methods.setdefault(stmt.name, qualname)
                    self.graph.methods_by_name.setdefault(
                        stmt.name, []
                    ).append(qualname)
                elif len(path) == 1:
                    self.module_defs[ctx.module][stmt.name] = qualname
                self._index_body(ctx, stmt.body, path + [stmt.name], None)
            elif isinstance(stmt, ast.ClassDef):
                qualname = ".".join(path + [stmt.name])
                info_cls = ClassInfo(
                    qualname=qualname,
                    module=ctx.module,
                    name=stmt.name,
                    bases=[
                        name for name in map(dotted_name, stmt.bases)
                        if name is not None
                    ],
                )
                self.graph.classes[qualname] = info_cls
                self.graph.classes_by_name.setdefault(
                    stmt.name, []
                ).append(qualname)
                if len(path) == 1:
                    self.module_classes[ctx.module][stmt.name] = qualname
                self._index_body(ctx, stmt.body, path + [stmt.name], info_cls)

    def _import_map(self, ctx: FileContext) -> Dict[str, Tuple[str, ...]]:
        package = ctx.module.split(".", 1)[0]
        table: Dict[str, Tuple[str, ...]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] != package:
                        continue
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else package
                    table[local] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                module = self._resolve_from(ctx, node, package)
                if module is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    if f"{module}.{alias.name}" in self.modules:
                        table[local] = ("module", f"{module}.{alias.name}")
                    else:
                        table[local] = ("name", module, alias.name)
        return table

    @staticmethod
    def _resolve_from(
        ctx: FileContext, node: ast.ImportFrom, package: str
    ) -> Optional[str]:
        if node.level == 0:
            module = node.module or ""
            return module if module.split(".", 1)[0] == package else None
        base = ctx.module.split(".")
        if not ctx.rel.endswith("__init__.py"):
            base = base[:-1]
        if node.level - 1 > len(base):
            return None
        resolved = base[: len(base) - (node.level - 1)]
        suffix = [s for s in (node.module or "").split(".") if s]
        target = ".".join(resolved + suffix)
        return target if target.split(".", 1)[0] == package else None

    # -- pass 2: link edges ---------------------------------------------------

    def link(self) -> None:
        # Two passes: every module's registry literals must be indexed
        # before any body links, or an alphabetically-earlier module
        # reading a later module's registry would resolve to nothing.
        linkers = [_ModuleLinker(self, ctx) for ctx in self.contexts]
        for linker in linkers:
            linker._collect_global_refs()
        for linker in linkers:
            linker._link_scope(
                linker.ctx.tree.body,
                enclosing=f"<module {linker.module}>",
            )
        for qualname, callees in self.graph.edges.items():
            self.graph.edges[qualname] = sorted(set(callees))

    # -- shared resolution helpers -------------------------------------------

    def function_at(
        self, module: str, name: str
    ) -> Optional[str]:
        return self.module_defs.get(module, {}).get(name)

    def class_at(self, module: str, name: str) -> Optional[str]:
        return self.module_classes.get(module, {}).get(name)

    def constructor_of(self, class_qualname: str) -> List[str]:
        """``__init__`` (plus ``__post_init__``) of a class, if defined."""
        info = self.graph.classes.get(class_qualname)
        if info is None:
            return []
        out = []
        for dunder in ("__init__", "__post_init__"):
            found = self.lookup_method(class_qualname, dunder)
            if found is not None:
                out.append(found)
        return out

    def lookup_method(
        self, class_qualname: str, method: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve ``method`` on a class, walking internal bases."""
        if _depth > 8:
            return None
        info = self.graph.classes.get(class_qualname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            base_qual = self._resolve_class_name(info.module, base)
            if base_qual is not None:
                found = self.lookup_method(base_qual, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_class_name(
        self, module: str, written: str
    ) -> Optional[str]:
        """A base-class reference as written -> class qualname."""
        head = written.split(".", 1)[0]
        local = self.class_at(module, written)
        if local is not None:
            return local
        entry = self.imports.get(module, {}).get(head)
        if entry is None:
            return None
        if entry[0] == "name" and "." not in written:
            return self.class_at(entry[1], entry[2])
        if entry[0] == "module" and "." in written:
            tail = written.split(".")
            target_module = entry[1] + (
                "." + ".".join(tail[1:-1]) if len(tail) > 2 else ""
            )
            return self.class_at(target_module, tail[-1])
        return None


class _ModuleLinker:
    """Links one module's references into the graph."""

    def __init__(self, builder: _Builder, ctx: FileContext) -> None:
        self.builder = builder
        self.graph = builder.graph
        self.ctx = ctx
        self.module = ctx.module

    # -- module-level registry literals --------------------------------------

    def _collect_global_refs(self) -> None:
        for stmt in self.ctx.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value: Optional[ast.expr] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            refs = self._function_refs(value)
            if not refs:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    key = (self.module, target.id)
                    self.graph.global_refs.setdefault(key, [])
                    self.graph.global_refs[key] = sorted(
                        set(self.graph.global_refs[key]) | set(refs)
                    )

    def _function_refs(self, value: ast.expr) -> List[str]:
        """Internal functions referenced anywhere inside ``value``."""
        out: Set[str] = set()
        for node in ast.walk(value):
            if isinstance(node, (ast.Name, ast.Attribute)):
                for qual in self._resolve_value(node):
                    out.add(qual)
            elif isinstance(node, ast.Lambda):
                out.add(self._synthesize_lambda(node))
        return sorted(out)

    def _synthesize_lambda(self, node: ast.Lambda) -> str:
        qualname = f"{self.module}.<lambda:{node.lineno}:{node.col_offset}>"
        if qualname not in self.graph.functions:
            self.graph.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=self.module,
                rel=self.ctx.rel,
                layer=self.ctx.layer,
                name="<lambda>",
                cls=None,
                node=node,
                line=node.lineno,
            )
            linker = _FunctionLinker(self, qualname)
            linker.link_body([node.body])
        return qualname

    # -- scope walk -----------------------------------------------------------

    def _link_scope(self, body: List[ast.stmt], enclosing: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = self._child_qualname(enclosing, stmt.name)
                if qualname in self.graph.functions:
                    linker = _FunctionLinker(self, qualname)
                    linker.link_function(stmt)
                    self._link_scope(stmt.body, qualname)
            elif isinstance(stmt, ast.ClassDef):
                qualname = self._child_qualname(enclosing, stmt.name)
                self._link_scope(stmt.body, qualname)

    def _child_qualname(self, enclosing: str, name: str) -> str:
        if enclosing.startswith("<module"):
            return f"{self.module}.{name}"
        return f"{enclosing}.{name}"

    # -- reference resolution -------------------------------------------------

    def _resolve_value(self, node: ast.AST) -> List[str]:
        """A Name/Attribute *reference* -> internal function qualnames."""
        if isinstance(node, ast.Name):
            found = self.builder.function_at(self.module, node.id)
            if found is not None:
                return [found]
            entry = self.builder.imports.get(self.module, {}).get(node.id)
            if entry is not None and entry[0] == "name":
                found = self.builder.function_at(entry[1], entry[2])
                return [found] if found is not None else []
            return []
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None:
                return []
            resolved = self._resolve_dotted_function(dotted)
            return [resolved] if resolved is not None else []
        return []

    def _resolve_dotted_function(self, dotted: str) -> Optional[str]:
        """``alias.sub.name`` -> function qualname, via the import map."""
        parts = dotted.split(".")
        entry = self.builder.imports.get(self.module, {}).get(parts[0])
        if entry is None or len(parts) < 2:
            return None
        if entry[0] == "module":
            module = ".".join([entry[1]] + parts[1:-1])
            return self.builder.function_at(module, parts[-1])
        if entry[0] == "name" and len(parts) == 2:
            # ``from pkg import mod`` landed as a name but is a module.
            module = f"{entry[1]}.{entry[2]}"
            if module in self.builder.modules:
                return self.builder.function_at(module, parts[-1])
        return None

    def _resolve_dotted_global(self, dotted: str) -> List[str]:
        """``alias.NAME`` -> global_refs of the target module's NAME."""
        parts = dotted.split(".")
        entry = self.builder.imports.get(self.module, {}).get(parts[0])
        if entry is None or len(parts) != 2:
            return []
        if entry[0] == "module":
            return self.graph.global_refs.get((entry[1], parts[1]), [])
        if entry[0] == "name":
            module = f"{entry[1]}.{entry[2]}"
            if module in self.builder.modules:
                return self.graph.global_refs.get((module, parts[1]), [])
        return []


class _FunctionLinker:
    """Collects the outgoing edges of one function."""

    def __init__(self, mod: _ModuleLinker, qualname: str) -> None:
        self.mod = mod
        self.builder = mod.builder
        self.graph = mod.graph
        self.qualname = qualname
        self.info = self.graph.functions[qualname]
        #: Defs nested directly in this function, name -> qualname.
        self.locals: Dict[str, str] = {}

    def link_function(self, node: ast.stmt) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.locals[stmt.name] = f"{self.qualname}.{stmt.name}"
        self.link_body(node.body)

    def link_body(self, body: List[ast.AST]) -> None:
        edges = self.graph.edges.setdefault(self.qualname, [])
        for node in _local_walk(body):
            if isinstance(node, ast.Call):
                edges.extend(self._resolve_call(node))
                # Function-valued arguments are address-taken.
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    edges.extend(self._resolve_reference(arg))
            elif isinstance(node, (ast.Name, ast.Attribute)):
                if isinstance(getattr(node, "ctx", None), ast.Load):
                    edges.extend(self._resolve_reference(node))

    # -- resolution ----------------------------------------------------------

    def _resolve_reference(self, node: ast.AST) -> List[str]:
        """Address-taken references and registry-literal reads."""
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                return [self.locals[node.id]]
            out = list(self.mod._resolve_value(node))
            out.extend(
                self.graph.global_refs.get((self.info.module, node.id), [])
            )
            return out
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None:
                return []
            out = list(self.mod._resolve_value(node))
            out.extend(self.mod._resolve_dotted_global(dotted))
            return out
        return []

    def _resolve_call(self, node: ast.Call) -> List[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(func)
        return []

    def _resolve_name_call(self, name: str) -> List[str]:
        if name in self.locals:
            return [self.locals[name]]
        module = self.info.module
        found = self.builder.function_at(module, name)
        if found is not None:
            return [found]
        cls = self.builder.class_at(module, name)
        if cls is not None:
            return self.builder.constructor_of(cls)
        entry = self.builder.imports.get(module, {}).get(name)
        if entry is not None and entry[0] == "name":
            found = self.builder.function_at(entry[1], entry[2])
            if found is not None:
                return [found]
            cls = self.builder.class_at(entry[1], entry[2])
            if cls is not None:
                return self.builder.constructor_of(cls)
        return []

    def _resolve_attr_call(self, func: ast.Attribute) -> List[str]:
        method = func.attr
        receiver = func.value
        # Fully-dotted module functions: ``specs.paper_for(...)``.
        dotted = dotted_name(func)
        if dotted is not None:
            resolved = self.mod._resolve_dotted_function(dotted)
            if resolved is not None:
                return [resolved]
        # ``self.m(...)`` / ``cls.m(...)``: the enclosing class.
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            return self._resolve_self_call(method)
        # ``ClassName.m(instance)``.
        if isinstance(receiver, ast.Name):
            cls = self.builder._resolve_class_name(
                self.info.module, receiver.id
            )
            if cls is not None:
                found = self.builder.lookup_method(cls, method)
                return [found] if found is not None else []
        # Receiver-tail hints: the machine's well-known slots.
        tail = receiver_tail(receiver)
        if tail in RECEIVER_CLASS_HINTS:
            out: List[str] = []
            for class_name in RECEIVER_CLASS_HINTS[tail]:
                for cls_qual in self.graph.classes_by_name.get(
                    class_name, []
                ):
                    found = self.builder.lookup_method(cls_qual, method)
                    if found is not None:
                        out.append(found)
            return out
        # Bare-name fallback, pruned by the layering map.  Dunders are
        # excluded (``super().__init__`` would otherwise link to every
        # constructor), and ambiguous names resolve only via hints —
        # a multi-candidate fan-out buries real findings in noise.
        if method in AMBIENT_METHODS or method.startswith("__"):
            return []
        out = []
        for qual in self.graph.methods_by_name.get(method, []):
            callee = self.graph.functions[qual]
            if _layer_allowed(self.info.layer, callee.layer):
                out.append(qual)
        return out if len(out) == 1 else []

    def _resolve_self_call(self, method: str) -> List[str]:
        info = self.info
        if info.cls is None:
            return []
        # The enclosing class qualname is qualname minus the method part.
        cls_qual = info.qualname.rsplit(".", 2)[0] + "." + info.cls
        found = self.builder.lookup_method(cls_qual, method)
        return [found] if found is not None else []


def _local_walk(body: List[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested defs/classes.

    Lambda bodies *are* walked (they execute in this frame's closure);
    decorator expressions and default values of nested defs are walked
    too (they evaluate in this scope).
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(
                d for d in node.args.kw_defaults if d is not None
            )
            continue
        if isinstance(node, ast.ClassDef):
            stack.extend(node.decorator_list)
            stack.extend(node.bases)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
