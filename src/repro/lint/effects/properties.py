"""The four project-level properties checked against effect summaries.

Each property is a :class:`~repro.lint.base.ProjectRule`, so findings
flow through the ordinary engine machinery (pragmas, baseline, path
scoping) under a dedicated rule id:

``effect-perturbation``
    Every function reachable from an observer/sanitizer hook entry
    point — the ``tracer.*`` / ``sanitizer.*`` calls the simulated core
    makes into attached recorders, plus the ``clock.observer`` callback
    — is transitively read-only over simulator state.  A hook that
    mutates the machine, charges the ledger, or assigns foreign
    attributes would make traced runs diverge from untraced ones.

``effect-ledger``
    Cycle totals move only through :meth:`CycleLedger.add` charge
    sites: no function anywhere may store to ``<clock|ledger>.total``
    or ``._by_category`` outside ``hw/clock.py``.  This one is not a
    reachability property — minting cycles is illegal from *any*
    caller.

``effect-determinism``
    Nothing reachable from the ``analysis/engine.py`` execute paths
    reaches unseeded RNG, wall clock, or unordered-set iteration —
    the per-file rules generalized to call-graph reachability, so the
    ban follows the call chain out of ``SIMULATED_LAYERS`` into
    top-level helpers.  ``obs``/``check`` sites are exempt by the
    observe-from-outside contract (their wall-clock use is reporting
    only); their *writes* are governed by ``effect-perturbation``.

``effect-race``
    Functions executed in worker processes (anything handed to a
    ``multiprocessing`` pool method, ``Process(target=...)`` or an
    executor ``submit``) must not write module-level or
    closure-captured state shared with the parent — exactly the
    hazards a fork inherits silently and the SMP/work-queue roadmap
    items would hit at runtime.

:class:`EffectRuleSuite` shares one call graph + fixpoint across the
four rules, computed lazily on the first ``check_project`` call of a
run and keyed on the context list's identity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.base import FileContext, ProjectRule, receiver_tail
from repro.lint.effects.callgraph import (
    CallGraph,
    RECEIVER_CLASS_HINTS,
    build_callgraph,
)
from repro.lint.effects.summaries import (
    CHARGES_LEDGER,
    CORE_LAYERS,
    EffectAnalysis,
    MINTS_CYCLES,
    UNORDERED_ITER,
    UNSEEDED_RNG,
    WALL_CLOCK,
    WRITES_CLOSURE,
    WRITES_FOREIGN_STATE,
    WRITES_MODULE_STATE,
    WRITES_SIM_STATE,
    analyze,
)
from repro.lint.closure import ProjectReport

#: The four property rule ids, in reporting order.
EFFECT_RULE_IDS: Tuple[str, ...] = (
    "effect-perturbation",
    "effect-ledger",
    "effect-determinism",
    "effect-race",
)

#: Effects that perturb the simulation when reached from a hook.
PERTURBING_EFFECTS: FrozenSet[str] = frozenset({
    WRITES_SIM_STATE,
    MINTS_CYCLES,
    CHARGES_LEDGER,
    WRITES_FOREIGN_STATE,
})

#: Effects that break replay when reached from the engine.
NONDETERMINISM_EFFECTS: FrozenSet[str] = frozenset({
    UNSEEDED_RNG,
    WALL_CLOCK,
    UNORDERED_ITER,
})

#: Effects that race a forked worker against its parent.
RACE_EFFECTS: FrozenSet[str] = frozenset({
    WRITES_MODULE_STATE,
    WRITES_CLOSURE,
})

#: Hook receiver slots whose method calls from the core are entry
#: points into observer/sanitizer code.
_HOOK_RECEIVERS = ("tracer", "sanitizer")

#: ``multiprocessing``/executor methods whose first argument runs in a
#: worker.
_SPAWN_METHODS: FrozenSet[str] = frozenset({
    "imap", "imap_unordered", "map_async", "starmap", "starmap_async",
    "apply", "apply_async", "submit",
})

#: Constructors whose ``target=`` keyword runs in a worker.
_SPAWN_CONSTRUCTORS: FrozenSet[str] = frozenset({"Process", "Thread"})

#: ``pool.map`` needs special care: ``map`` is also a builtin and an
#: ambient method name, but here we resolve the *argument*, so a
#: same-named dict method cannot add edges — only spawn roots.
_POOL_MAP = "map"

#: The engine module whose top-level functions root the determinism
#: closure.
_ENGINE_REL = "analysis/engine.py"


@dataclass
class RootSets:
    """The discovered entry points for the reachability properties.

    ``*_why`` maps each root qualname to a human-readable description
    of the site that made it a root (for ``--why`` output).
    """

    perturbation: Set[str] = field(default_factory=set)
    determinism: Set[str] = field(default_factory=set)
    race: Set[str] = field(default_factory=set)
    perturbation_why: Dict[str, str] = field(default_factory=dict)
    race_why: Dict[str, str] = field(default_factory=dict)


def discover_roots(
    contexts: List[FileContext], graph: CallGraph
) -> RootSets:
    roots = RootSets()
    _hook_roots(contexts, graph, roots)
    _engine_roots(graph, roots)
    _spawn_roots(contexts, graph, roots)
    return roots


def _hint_methods(graph: CallGraph, tail: str, method: str) -> List[str]:
    """Resolve ``<tail>.<method>`` via the receiver-hint class table."""
    out: List[str] = []
    for class_name in RECEIVER_CLASS_HINTS.get(tail, ()):
        for cls_qual in graph.classes_by_name.get(class_name, []):
            info = graph.classes.get(cls_qual)
            if info is None:
                continue
            found = info.methods.get(method)
            if found is not None:
                out.append(found)
    return out


def _hook_roots(
    contexts: List[FileContext], graph: CallGraph, roots: RootSets
) -> None:
    """Hook entry points: core-side calls into attached recorders."""
    for ctx in contexts:
        if ctx.layer in CORE_LAYERS:
            for node in ast.walk(ctx.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                tail = receiver_tail(node.func.value)
                if tail not in _HOOK_RECEIVERS:
                    continue
                for qual in _hint_methods(graph, tail, node.func.attr):
                    info = graph.functions.get(qual)
                    if info is None or info.layer not in ("obs", "check"):
                        continue
                    roots.perturbation.add(qual)
                    roots.perturbation_why.setdefault(
                        qual,
                        f"called as {tail}.{node.func.attr}(...) from "
                        f"{ctx.rel}:{node.lineno}",
                    )
        # Observer callbacks: ``<...>.observer = <bound method>``.
        for node in ast.walk(ctx.tree):
            value: Optional[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr == "observer"
                ):
                    continue
                for qual in _callback_targets(graph, ctx, value):
                    roots.perturbation.add(qual)
                    roots.perturbation_why.setdefault(
                        qual,
                        "installed as a clock observer at "
                        f"{ctx.rel}:{node.lineno}",
                    )


def _callback_targets(
    graph: CallGraph, ctx: FileContext, value: ast.expr
) -> List[str]:
    """Functions an observer-slot assignment may install."""
    if isinstance(value, ast.Name):
        qual = f"{ctx.module}.{value.id}"
        if qual in graph.functions:
            return [qual]
        # Imported name: every obs/check module-level def of that name.
        return sorted(
            q for q, info in graph.functions.items()
            if info.name == value.id and info.cls is None
            and info.layer in ("obs", "check")
        )
    if isinstance(value, ast.Attribute):
        method = value.attr
        tail = receiver_tail(value.value)
        if tail is not None:
            hinted = _hint_methods(graph, tail, method)
            if hinted:
                return hinted
        # Fall back to every obs/check method of that name.
        return [
            qual
            for qual in graph.methods_by_name.get(method, [])
            if graph.functions[qual].layer in ("obs", "check")
        ]
    return []


def _engine_roots(graph: CallGraph, roots: RootSets) -> None:
    """Determinism roots: every function defined in the engine module."""
    for qual, info in graph.functions.items():
        if info.rel == _ENGINE_REL:
            roots.determinism.add(qual)


def _spawn_roots(
    contexts: List[FileContext], graph: CallGraph, roots: RootSets
) -> None:
    """Race roots: functions handed to pools, processes, executors."""
    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            candidate: Optional[ast.expr] = None
            how = ""
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    func.attr in _SPAWN_METHODS
                    or (func.attr == _POOL_MAP
                        and receiver_tail(func.value) in
                        ("pool", "executor"))
                ) and node.args:
                    candidate = node.args[0]
                    how = f".{func.attr}(...)"
            name = (
                func.id if isinstance(func, ast.Name)
                else getattr(func, "attr", None)
            )
            if name in _SPAWN_CONSTRUCTORS:
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        candidate = keyword.value
                        how = f"{name}(target=...)"
            if candidate is None:
                continue
            for qual in _worker_targets(graph, ctx, candidate):
                roots.race.add(qual)
                roots.race_why.setdefault(
                    qual,
                    f"dispatched to a worker via {how} at "
                    f"{ctx.rel}:{node.lineno}",
                )


def _worker_targets(
    graph: CallGraph, ctx: FileContext, value: ast.expr
) -> List[str]:
    """Resolve a worker-function argument to graph nodes."""
    if isinstance(value, ast.Name):
        qual = f"{ctx.module}.{value.id}"
        if qual in graph.functions:
            return [qual]
        # Imported or aliased: every module-level def of that name.
        return sorted(
            q for q, info in graph.functions.items()
            if info.name == value.id and info.cls is None
        )
    if isinstance(value, ast.Attribute):
        method = value.attr
        return sorted(
            q for q, info in graph.functions.items()
            if info.name == method
        )
    return []


# -- the shared analysis ------------------------------------------------------


class _SharedAnalysis:
    """One call graph + fixpoint per engine run, shared by the suite."""

    def __init__(self, known_rule_ids: FrozenSet[str]) -> None:
        self.known_rule_ids = known_rule_ids
        self._contexts: Optional[List[FileContext]] = None
        self.analysis: Optional[EffectAnalysis] = None
        self.roots: Optional[RootSets] = None

    def get(
        self, contexts: List[FileContext]
    ) -> Tuple[EffectAnalysis, RootSets]:
        if self._contexts is not contexts or self.analysis is None:
            graph = build_callgraph(contexts)
            self.analysis = analyze(contexts, graph, self.known_rule_ids)
            self.roots = discover_roots(contexts, graph)
            self._contexts = contexts
        assert self.roots is not None
        return self.analysis, self.roots


def _short(qualname: str) -> str:
    """``repro.obs.sampler.TimeSeriesSampler.on_cycles`` -> readable."""
    return qualname[len("repro."):] if qualname.startswith("repro.") else qualname


def _render_chain(chain: Optional[List[str]]) -> str:
    if not chain:
        return "<unreachable>"
    return " -> ".join(_short(link) for link in chain)


class _EffectPropertyRule(ProjectRule):
    """Base for the four checks: resolves the shared analysis."""

    def __init__(self, shared: _SharedAnalysis) -> None:
        self.shared = shared

    def check_project(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        analysis, roots = self.shared.get(contexts)
        by_rel = {ctx.rel: ctx for ctx in contexts}
        self.check_effects(analysis, roots, by_rel, report)

    def check_effects(
        self,
        analysis: EffectAnalysis,
        roots: RootSets,
        by_rel: Dict[str, FileContext],
        report: ProjectReport,
    ) -> None:
        raise NotImplementedError

    def _report_sites(
        self,
        analysis: EffectAnalysis,
        root_set: Set[str],
        root_why: Dict[str, str],
        effects: FrozenSet[str],
        by_rel: Dict[str, FileContext],
        report: ProjectReport,
        consequence: str,
        skip_layers: FrozenSet[str] = frozenset(),
    ) -> None:
        """Report every direct effect site reachable from ``root_set``."""
        graph = analysis.graph
        for qual in sorted(graph.reachable(root_set)):
            summary = analysis.summary(qual)
            if summary is None:
                continue
            info = graph.functions[qual]
            if info.layer in skip_layers:
                continue
            hits = sorted(effects & set(summary.direct))
            if not hits:
                continue
            chain = graph.shortest_chain(root_set, qual)
            root = chain[0] if chain else qual
            origin = root_why.get(root, "")
            origin_note = f" ({origin})" if origin else ""
            ctx = by_rel.get(info.rel)
            if ctx is None:
                continue
            for effect in hits:
                for site in summary.direct[effect]:
                    node = _SiteNode(site.line, site.col)
                    report(
                        ctx,
                        node,
                        f"{_short(qual)} {site.detail}, but is "
                        f"reachable via {_render_chain(chain)}"
                        f"{origin_note}; {consequence}",
                    )


class _SiteNode:
    """A minimal node carrying a location for the engine's report."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


class PerturbationClosureRule(_EffectPropertyRule):
    id = "effect-perturbation"
    description = (
        "functions reachable from observer/sanitizer hook entry points "
        "are transitively read-only over simulator state"
    )

    def check_effects(
        self,
        analysis: EffectAnalysis,
        roots: RootSets,
        by_rel: Dict[str, FileContext],
        report: ProjectReport,
    ) -> None:
        self._report_sites(
            analysis,
            roots.perturbation,
            roots.perturbation_why,
            PERTURBING_EFFECTS,
            by_rel,
            report,
            "observer hooks must not perturb the simulation",
        )


class LedgerSoundnessRule(_EffectPropertyRule):
    id = "effect-ledger"
    description = (
        "cycle totals change only through CycleLedger.add charge sites "
        "in hw/clock.py — no path may mint cycles"
    )

    def check_effects(
        self,
        analysis: EffectAnalysis,
        roots: RootSets,
        by_rel: Dict[str, FileContext],
        report: ProjectReport,
    ) -> None:
        # Not a reachability property: minting is illegal everywhere.
        for qual in sorted(analysis.summaries):
            summary = analysis.summaries[qual]
            sites = summary.direct.get(MINTS_CYCLES, [])
            if not sites:
                continue
            info = analysis.graph.functions[qual]
            ctx = by_rel.get(info.rel)
            if ctx is None:
                continue
            for site in sites:
                report(
                    ctx,
                    _SiteNode(site.line, site.col),
                    f"{_short(qual)} {site.detail}; cycle totals may "
                    "only change through CycleLedger.add charge sites "
                    "in hw/clock.py",
                )


class DeterminismClosureRule(_EffectPropertyRule):
    id = "effect-determinism"
    description = (
        "nothing reachable from analysis/engine.py execute paths "
        "reaches unseeded RNG, wall clock, or unordered-set iteration"
    )

    def check_effects(
        self,
        analysis: EffectAnalysis,
        roots: RootSets,
        by_rel: Dict[str, FileContext],
        report: ProjectReport,
    ) -> None:
        self._report_sites(
            analysis,
            roots.determinism,
            {},
            NONDETERMINISM_EFFECTS,
            by_rel,
            report,
            "result-producing paths must replay bit-identically",
            # Recorder layers observe from outside; their wall-clock
            # use is reporting-only (see SIMULATED_LAYERS), and their
            # writes are policed by effect-perturbation.
            skip_layers=frozenset({"obs", "check"}),
        )


class RaceFreedomRule(_EffectPropertyRule):
    id = "effect-race"
    description = (
        "functions executed in worker processes do not write module or "
        "closure state shared with the parent"
    )

    def check_effects(
        self,
        analysis: EffectAnalysis,
        roots: RootSets,
        by_rel: Dict[str, FileContext],
        report: ProjectReport,
    ) -> None:
        self._report_sites(
            analysis,
            roots.race,
            roots.race_why,
            RACE_EFFECTS,
            by_rel,
            report,
            "worker processes must not share mutable state with the "
            "parent",
        )


class EffectRuleSuite:
    """The four property rules wired to one shared analysis."""

    def __init__(self, known_rule_ids: Optional[FrozenSet[str]] = None) -> None:
        if known_rule_ids is None:
            # Late import: the engine imports this module for the ids.
            from repro.lint.engine import KNOWN_RULE_IDS
            known_rule_ids = frozenset(KNOWN_RULE_IDS)
        self.shared = _SharedAnalysis(known_rule_ids)

    def rules(self) -> List[ProjectRule]:
        return [
            PerturbationClosureRule(self.shared),
            LedgerSoundnessRule(self.shared),
            DeterminismClosureRule(self.shared),
            RaceFreedomRule(self.shared),
        ]

    @property
    def analysis(self) -> Optional[EffectAnalysis]:
        """The computed analysis (after a run), for --effects-json/--why."""
        return self.shared.analysis

    @property
    def roots(self) -> Optional[RootSets]:
        return self.shared.roots


#: id -> description for the engine's rule catalog (the suite is
#: instantiated per run, but the catalog is static).
EFFECT_RULE_DESCRIPTIONS: Dict[str, str] = {
    cls.id: cls.description
    for cls in (
        PerturbationClosureRule,
        LedgerSoundnessRule,
        DeterminismClosureRule,
        RaceFreedomRule,
    )
}
