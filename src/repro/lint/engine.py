"""The lint engine: scan a package tree, run every rule, filter.

The engine always parses the *whole* package (the closure rules need
every charge site and publish site), then filters the reported
findings to the requested sub-paths.  Suppression happens in two
layers: inline pragmas (exact line), then the committed baseline
(line-independent fingerprints).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.lint import closure, rules
from repro.lint.base import FileContext, ProjectRule, Report, Rule
from repro.lint.baseline import Baseline
from repro.lint.effects.properties import (
    EFFECT_RULE_DESCRIPTIONS,
    EFFECT_RULE_IDS,
)
from repro.lint.findings import Finding
from repro.lint.pragmas import PRAGMA_RULE, FilePragmas, parse_pragmas

#: Pseudo-rule for files the engine cannot parse.
PARSE_RULE = "parse-error"

#: Every shipped rule, in reporting order.
ALL_RULES: List[Rule] = [
    rules.UnseededRandomRule(),
    rules.WallClockRule(),
    rules.SetIterationRule(),
    rules.LayeringRule(),
    rules.ShimImportRule(),
    rules.ZeroPerturbationRule(),
    rules.HookGuardRule(),
    rules.ErrorDisciplineRule(),
    rules.GeometryLiteralRule(),
    closure.LedgerTaxonomyRule(),
    closure.EventRegistryRule(),
    closure.InvariantRegistrationRule(),
    closure.ExperimentRegistryRule(),
    closure.AnalyticsCoverageRule(),
    closure.ObservatoryClosureRule(),
]

#: Ids a pragma may name: rules, the engine's pseudo-rules, and the
#: four effect properties (always known, so pragmas naming them parse
#: even when ``--effects`` is off).
KNOWN_RULE_IDS = (
    {rule.id for rule in ALL_RULES}
    | {PRAGMA_RULE, PARSE_RULE}
    | set(EFFECT_RULE_IDS)
)


def rule_catalog() -> List[Dict[str, str]]:
    """``[{"id", "description"}, ...]`` for ``--list-rules`` and docs."""
    catalog = [
        {
            "id": rule.id,
            "description": rule.description,
            "kind": (
                "project" if isinstance(rule, ProjectRule) else "file"
            ),
            "severity": rule.severity,
        }
        for rule in ALL_RULES
    ]
    for rule_id in EFFECT_RULE_IDS:
        catalog.append({
            "id": rule_id,
            "description": EFFECT_RULE_DESCRIPTIONS[rule_id],
            "kind": "effect",
            "severity": "error",
        })
    catalog.append({
        "id": PRAGMA_RULE,
        "description": (
            "every repro-lint pragma names known rules and carries a "
            "'-- justification'"
        ),
        "kind": "pseudo",
        "severity": "error",
    })
    catalog.append({
        "id": PARSE_RULE,
        "description": "every scanned file parses as Python",
        "kind": "pseudo",
        "severity": "error",
    })
    return catalog


@dataclass
class LintResult:
    """Outcome of one engine run."""

    #: Findings that fail the run (not suppressed), sorted.
    findings: List[Finding] = field(default_factory=list)
    #: Findings matched (and silenced) by the committed baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Count of findings silenced by inline pragmas.
    pragma_suppressed: int = 0
    files_scanned: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        """No error findings (warns fail only under ``--fail-on-warn``)."""
        return not self.errors

    def to_record(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warn": len(self.warnings),
            },
            "files_scanned": self.files_scanned,
            "findings": [f.to_record() for f in self.findings],
            "baselined": [f.to_record() for f in self.baselined],
            "suppressed": {
                "baseline": len(self.baselined),
                "pragma": self.pragma_suppressed,
            },
            "rules": rule_catalog(),
        }


class LintEngine:
    """Scans one package root with the shipped rule set."""

    def __init__(
        self,
        root: Path,
        lint_rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
    ) -> None:
        #: Directory of the package to scan (e.g. ``.../src/repro``).
        self.root = Path(root)
        self.rules: List[Rule] = list(
            ALL_RULES if lint_rules is None else lint_rules
        )
        self.baseline = baseline if baseline is not None else Baseline()

    # -- scanning ------------------------------------------------------------

    def _module_for(self, rel: Path) -> str:
        parts = [self.root.name] + list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts)

    def _load(self) -> "tuple[List[FileContext], List[Finding]]":
        contexts: List[FileContext] = []
        broken: List[Finding] = []
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(self.root)
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                broken.append(
                    Finding(
                        rule=PARSE_RULE,
                        path=rel.as_posix(),
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            layer = rel.parts[0] if len(rel.parts) > 1 else ""
            contexts.append(
                FileContext(
                    path=path,
                    rel=rel.as_posix(),
                    layer=layer,
                    module=self._module_for(rel),
                    tree=tree,
                    lines=source.splitlines(),
                )
            )
        return contexts, broken

    # -- running -------------------------------------------------------------

    def run(self, paths: Optional[Sequence[Path]] = None) -> LintResult:
        """Run every rule; ``paths`` restricts *reported* locations.

        The whole package is always scanned so the closure rules see
        every callsite; path scoping only filters which findings are
        reported.
        """
        contexts, raw = self._load()

        def file_report(ctx: FileContext) -> Report:
            def report(node: ast.AST, message: str) -> None:
                raw.append(
                    Finding(
                        rule=current_rule.id,
                        path=ctx.rel,
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        message=message,
                        severity=current_rule.severity,
                    )
                )
            return report

        current_rule: Rule
        for current_rule in self.rules:
            if isinstance(current_rule, ProjectRule):
                rule = current_rule

                def project_report(
                    ctx: FileContext, node: ast.AST, message: str,
                    rule: ProjectRule = rule,
                ) -> None:
                    raw.append(
                        Finding(
                            rule=rule.id,
                            path=ctx.rel,
                            line=getattr(node, "lineno", 1),
                            col=getattr(node, "col_offset", 0),
                            message=message,
                            severity=rule.severity,
                        )
                    )

                current_rule.check_project(contexts, project_report)
            else:
                for ctx in contexts:
                    current_rule.check_file(ctx, file_report(ctx))

        # Pragmas: line-exact suppression plus hygiene findings.
        pragmas_by_rel: Dict[str, FilePragmas] = {}
        for ctx in contexts:
            pragmas = parse_pragmas(ctx.lines, KNOWN_RULE_IDS)
            pragmas_by_rel[ctx.rel] = pragmas
            for line, message in pragmas.problems:
                raw.append(
                    Finding(
                        rule=PRAGMA_RULE,
                        path=ctx.rel,
                        line=line,
                        col=0,
                        message=message,
                    )
                )

        result = LintResult(files_scanned=len(contexts))
        scoped = self._scope_filter(paths)
        for finding in sorted(set(raw), key=Finding.sort_key):
            pragmas = pragmas_by_rel.get(finding.path)
            if pragmas is not None and pragmas.suppresses(
                finding.rule, finding.line
            ):
                result.pragma_suppressed += 1
                continue
            if not scoped(finding):
                continue
            if self.baseline.matches(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
        return result

    def _scope_filter(
        self, paths: Optional[Sequence[Path]]
    ) -> "Callable[[Finding], bool]":
        if not paths:
            return lambda finding: True
        resolved = [Path(p).resolve() for p in paths]

        def scoped(finding: Finding) -> bool:
            absolute = (self.root / finding.path).resolve()
            for scope in resolved:
                if absolute == scope or scope in absolute.parents:
                    return True
            return False

        return scoped
