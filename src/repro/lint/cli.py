"""``python -m repro lint`` — the CLI front end of the lint engine.

Exit codes: 0 clean (baselined findings do not fail the run), 1 active
findings, 2 usage error (unknown path).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import BASELINE_NAME, Baseline
from repro.lint.engine import ALL_RULES, KNOWN_RULE_IDS, LintEngine, rule_catalog


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def find_baseline(root: Path) -> Path:
    """Locate the committed baseline for a package at ``root``.

    Walks up from the package directory looking for an existing
    baseline file, else for a repo marker (``pyproject.toml`` or
    ``.git``) naming where a new one should be written.  Falls back to
    the package's parent directory.
    """
    for candidate in [root] + list(root.parents):
        if (candidate / BASELINE_NAME).exists():
            return candidate / BASELINE_NAME
    for candidate in [root] + list(root.parents):
        if (candidate / "pyproject.toml").exists() or (
            candidate / ".git"
        ).exists():
            return candidate / BASELINE_NAME
    return root.parent / BASELINE_NAME


def _resolve_paths(
    root: Path, raw_paths: Sequence[str]
) -> Optional[List[Path]]:
    """Map CLI path arguments onto the scanned tree (None on error)."""
    resolved: List[Path] = []
    for raw in raw_paths:
        candidate = Path(raw)
        if candidate.exists():
            resolved.append(candidate.resolve())
            continue
        inside = root / raw
        if inside.exists():
            resolved.append(inside.resolve())
            continue
        print(f"repro lint: no such path: {raw}", file=sys.stderr)
        return None
    return resolved


def list_rules() -> int:
    for entry in rule_catalog():
        print(f"  {entry['id']:<24} {entry['description']}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Entry point for the ``lint`` subcommand (parsed namespace)."""
    if args.list_rules:
        return list_rules()

    root = default_root() if args.root is None else Path(args.root).resolve()
    if not root.is_dir():
        print(f"repro lint: not a directory: {root}", file=sys.stderr)
        return 2

    paths = _resolve_paths(root, args.paths)
    if paths is None:
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline is not None
        else find_baseline(root)
    )
    baseline = (
        Baseline() if args.no_baseline else Baseline.load(baseline_path)
    )

    effects_on = bool(
        getattr(args, "effects", False)
        or getattr(args, "effects_json", None)
        or getattr(args, "why", None)
    )
    suite = None
    lint_rules = None
    if effects_on:
        from repro.lint.effects import EffectRuleSuite

        suite = EffectRuleSuite(frozenset(KNOWN_RULE_IDS))
        lint_rules = list(ALL_RULES) + suite.rules()

    engine = LintEngine(root, lint_rules=lint_rules, baseline=baseline)
    result = engine.run(paths=paths)

    if suite is not None and suite.analysis is not None:
        from repro.lint.effects.explain import effects_json, explain_why

        assert suite.roots is not None
        if getattr(args, "effects_json", None):
            artifact = effects_json(suite.analysis, suite.roots)
            payload = json.dumps(artifact, indent=2, sort_keys=True)
            if args.effects_json == "-":
                print(payload)
            else:
                Path(args.effects_json).write_text(payload + "\n")
                if not args.json:  # keep --json stdout pure JSON
                    print(
                        f"wrote effect summaries for "
                        f"{artifact['totals']['functions']} functions "  # type: ignore[index]
                        f"to {args.effects_json}"
                    )
        if getattr(args, "why", None):
            print(explain_why(suite.analysis, suite.roots, args.why))

    if args.write_baseline:
        Baseline.write(baseline_path, result.findings + result.baselined)
        print(
            f"wrote {len(result.findings) + len(result.baselined)} "
            f"finding(s) to {baseline_path}"
        )
        return 0

    fail_on_warn = bool(getattr(args, "fail_on_warn", False))
    failed = (not result.ok) or (fail_on_warn and result.warnings)

    if args.json:
        record = result.to_record()
        record["root"] = str(root)
        print(json.dumps(record, indent=2, sort_keys=True))
        return 1 if failed else 0

    prefix = f"{root}/"
    for finding in result.findings:
        print(finding.render(prefix=prefix))
    summary = (
        f"{result.files_scanned} files scanned, "
        f"{len(result.findings)} finding(s)"
    )
    if result.warnings:
        summary += (
            f" ({len(result.errors)} error, "
            f"{len(result.warnings)} warn)"
        )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.pragma_suppressed:
        summary += f", {result.pragma_suppressed} pragma-suppressed"
    print(summary)
    return 1 if failed else 0
