"""The per-file domain rules.

Each rule encodes one discipline the repo stakes guarantees on — see
DESIGN.md's "Static analysis" section for the inventory.  The rules are
conservative by construction: they flag only patterns they can prove
from the AST (e.g. iteration over an expression *known* to be a set),
so a clean run is meaningful and pragmas stay rare.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.lint.base import (
    SIMULATED_LAYERS,
    FileContext,
    Report,
    Rule,
    active_guards,
    attr_root,
    dotted_name,
    receiver_tail,
)

# -- determinism -------------------------------------------------------------

#: Module-level functions of :mod:`random` that use the shared,
#: unseeded global generator.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "getrandbits", "randbytes", "betavariate",
    "expovariate", "gauss", "normalvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "seed",
})

#: Wall-clock and entropy sources that differ between identical runs.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
})


class UnseededRandomRule(Rule):
    id = "unseeded-random"
    description = (
        "simulated paths must draw randomness from a seeded "
        "random.Random(seed), never the global generator"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        if ctx.layer not in SIMULATED_LAYERS:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        report(
                            node,
                            f"'from random import {alias.name}' uses the "
                            "unseeded global generator; construct a "
                            "seeded random.Random(seed) instead",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if (
                    name.startswith("random.")
                    and name[len("random."):] in _GLOBAL_RANDOM_FUNCS
                ):
                    report(
                        node,
                        f"{name}() draws from the unseeded global "
                        "generator; use a seeded random.Random(seed) "
                        "instance",
                    )
                elif (
                    name == "random.Random"
                    and not node.args
                    and not node.keywords
                ):
                    report(
                        node,
                        "random.Random() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )


class WallClockRule(Rule):
    id = "wall-clock"
    description = (
        "simulated paths must not read wall-clock time or OS entropy "
        "(time.time, datetime.now, os.urandom, ...)"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        if ctx.layer not in SIMULATED_LAYERS:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    report(
                        node,
                        f"{name}() varies between identical runs; "
                        "simulated time lives in the cycle ledger",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if f"time.{alias.name}" in _WALL_CLOCK_CALLS:
                        report(
                            node,
                            f"'from time import {alias.name}' pulls a "
                            "wall-clock source into a simulated path",
                        )


def _is_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` provably evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _iteration_sites(tree: ast.AST) -> Iterator[Tuple[ast.AST, ast.expr]]:
    """Every ``(node, iterable)`` pair: for-loops and comprehensions."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(
            node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            for generator in node.generators:
                yield node, generator.iter


def _known_set_names(scope: ast.AST) -> Set[str]:
    """Local names provably holding sets for a whole function scope.

    A name counts only if *every* plain assignment to it is a set
    expression, so reassignment to a list or sorted() clears it.
    """
    good: Set[str] = set()
    bad: Set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value):
                    good.add(target.id)
                else:
                    bad.add(target.id)
    return good - bad


def _known_set_self_attrs(klass: ast.ClassDef) -> Set[str]:
    """``self.X`` attributes provably holding sets class-wide."""
    good: Set[str] = set()
    bad: Set[str] = set()
    for node in ast.walk(klass):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if _is_set_expr(node.value):
                    good.add(target.attr)
                else:
                    bad.add(target.attr)
    return good - bad


class SetIterationRule(Rule):
    id = "set-iteration"
    description = (
        "simulated paths must not iterate sets directly (hash order "
        "is not stable); iterate sorted(...) instead"
    )

    _MESSAGE = (
        "iteration order over a set is not deterministic; "
        "iterate sorted(...) or keep an ordered structure"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        if ctx.layer not in SIMULATED_LAYERS:
            return
        # Direct set expressions, anywhere.
        for _node, iterable in _iteration_sites(ctx.tree):
            if _is_set_expr(iterable):
                report(iterable, self._MESSAGE)
        # Locals provably bound to sets, per function scope.
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            names = _known_set_names(scope)
            if not names:
                continue
            for _node, iterable in _iteration_sites(scope):
                if isinstance(iterable, ast.Name) and iterable.id in names:
                    report(iterable, self._MESSAGE)
        # ``self.X`` attributes provably bound to sets, per class.
        for klass in ast.walk(ctx.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            attrs = _known_set_self_attrs(klass)
            if not attrs:
                continue
            for _node, iterable in _iteration_sites(klass):
                if (
                    isinstance(iterable, ast.Attribute)
                    and isinstance(iterable.value, ast.Name)
                    and iterable.value.id == "self"
                    and iterable.attr in attrs
                ):
                    report(iterable, self._MESSAGE)


# -- layering ----------------------------------------------------------------

#: Layer -> sibling layers it must not import.  ``hw`` models silicon
#: and knows nothing above it; ``kernel`` sits on ``hw`` and is
#: observed *by* sim/obs/check through duck-typed hooks, never the
#: other way around.
_BANNED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "hw": frozenset({
        "kernel", "sim", "obs", "check", "analysis", "workloads",
        "oscompare",
    }),
    "kernel": frozenset({
        "sim", "obs", "check", "analysis", "workloads", "oscompare",
    }),
}


class LayeringRule(Rule):
    id = "layering"
    description = (
        "hw/ imports no higher layer; kernel/ never imports sim/, "
        "obs/ or check/; only the CLI imports lint/"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        package = ctx.module.split(".", 1)[0]
        banned = set(_BANNED_IMPORTS.get(ctx.layer, frozenset()))
        if ctx.layer not in ("", "lint"):
            banned.add("lint")
        if not banned:
            return
        for node, target in self._internal_imports(ctx, package):
            parts = target.split(".")
            if len(parts) >= 2 and parts[1] in banned:
                report(
                    node,
                    f"{ctx.layer}/ must not import {parts[1]}/ "
                    f"(imports {target})",
                )

    @staticmethod
    def _internal_imports(
        ctx: FileContext, package: str
    ) -> Iterator[Tuple[ast.AST, str]]:
        """Every import of a module inside ``package``."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == package:
                        yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    module = node.module or ""
                    if module.split(".", 1)[0] == package:
                        yield node, module
                    continue
                # Resolve a relative import against this module's
                # package path.
                base = ctx.module.split(".")
                if not ctx.rel.endswith("__init__.py"):
                    base = base[:-1]
                if node.level - 1 <= len(base):
                    resolved = base[: len(base) - (node.level - 1)]
                    suffix = (node.module or "").split(".")
                    target = ".".join(resolved + [s for s in suffix if s])
                    if target.split(".", 1)[0] == package:
                        yield node, target


# -- deleted shims -----------------------------------------------------------

#: Module paths that once existed as compatibility shims and were
#: deleted.  Importing them would resurrect the indirection; the rule
#: names the canonical home so the fix is mechanical.
_SHIMMED_MODULES: Dict[str, str] = {
    "repro.sim.clock": "repro.hw.clock",
    "repro.analysis.experiments": "repro.analysis.specs",
}


class ShimImportRule(Rule):
    id = "no-shim-import"
    description = (
        "deleted compat shims (repro.sim.clock, "
        "repro.analysis.experiments) must not be imported; use the "
        "canonical module"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        package = ctx.module.split(".", 1)[0]
        for node, target in LayeringRule._internal_imports(ctx, package):
            canonical = _SHIMMED_MODULES.get(target)
            if canonical is not None:
                report(
                    node,
                    f"{target} is a deleted compat shim; import "
                    f"{canonical} instead",
                )


# -- zero perturbation -------------------------------------------------------


def _assignment_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield node.target
    elif isinstance(node, ast.Delete):
        yield from node.targets


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target


class ZeroPerturbationRule(Rule):
    id = "zero-perturbation"
    description = (
        "obs/ and check/ may read foreign objects but never assign "
        "attributes on them (counter-free reads contract)"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        if ctx.layer not in ("obs", "check"):
            return
        owned = self._module_level_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            for raw in _assignment_targets(node):
                for target in _flatten_targets(raw):
                    if not isinstance(target, ast.Attribute):
                        continue
                    root = attr_root(target)
                    if isinstance(root, ast.Name) and (
                        root.id in ("self", "cls") or root.id in owned
                    ):
                        # self/cls state, or a module-level singleton this
                        # file itself defines — owned, not foreign.
                        continue
                    report(
                        target,
                        f"assignment to foreign attribute "
                        f"'{ast.unparse(target)}' perturbs the observed "
                        "system; observers only read",
                    )

    @staticmethod
    def _module_level_names(tree: ast.Module) -> Set[str]:
        """Names bound by assignment at module top level."""
        owned: Set[str] = set()
        for stmt in tree.body:
            for raw in _assignment_targets(stmt):
                for target in _flatten_targets(raw):
                    if isinstance(target, ast.Name):
                        owned.add(target.id)
        return owned


# -- hook discipline ---------------------------------------------------------

#: Optional hook attributes the machine carries (``None`` unless a
#: recorder/sanitizer is attached).
_HOOK_NAMES = ("tracer", "sanitizer")


class HookGuardRule(Rule):
    id = "hook-guard"
    description = (
        "every tracer/sanitizer hook callsite must be guarded by an "
        "'is not None' check on the hook"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        if ctx.layer not in ("hw", "kernel", "sim"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            receiver = node.func.value
            if receiver_tail(receiver) not in _HOOK_NAMES:
                continue
            expr = ast.unparse(receiver)
            if expr not in active_guards(ctx, node):
                report(
                    node,
                    f"hook call '{expr}.{node.func.attr}(...)' is not "
                    f"guarded by 'if {expr} is not None'",
                )


# -- error discipline --------------------------------------------------------

_BLIND_EXCEPTIONS = ("Exception", "BaseException")


def _names_in_handler_type(node: Optional[ast.expr]) -> Iterator[str]:
    if node is None:
        return
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _names_in_handler_type(element)
    else:
        name = dotted_name(node)
        if name is not None:
            yield name


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


class ErrorDisciplineRule(Rule):
    id = "error-discipline"
    description = (
        "no bare 'except:' and no blanket 'except Exception:' that "
        "does not re-raise"
    )

    def check_file(self, ctx: FileContext, report: Report) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                report(
                    node,
                    "bare 'except:' swallows every error, including "
                    "simulator invariant failures; catch specific types",
                )
                continue
            blind = [
                name
                for name in _names_in_handler_type(node.type)
                if name in _BLIND_EXCEPTIONS
            ]
            if blind and not _reraises(node):
                report(
                    node,
                    f"'except {blind[0]}:' without re-raise masks "
                    "programming errors; catch ReproError subclasses "
                    "or re-raise",
                )


# -- geometry discipline -----------------------------------------------------

#: Layers whose address arithmetic must spell geometry by name.  The
#: top-level ``params.py`` (layer ``""``) is the one place the raw
#: numbers may live.
_GEOMETRY_LAYERS: FrozenSet[str] = SIMULATED_LAYERS | frozenset({
    "check", "obs",
})

#: value -> (ops that make it geometry, identifier words that prove the
#: domain, the params name to use instead).  An entry fires only when a
#: bare literal of that value meets one of the listed operators *and*
#: the other operand's identifiers contain a domain word — e.g.
#: ``flat % 8`` fires, ``retries % 8`` does not.
_GEOMETRY_LITERALS: Dict[int, Tuple[
    Tuple[type, ...], FrozenSet[str], str,
]] = {
    8: (
        (ast.Mult, ast.FloorDiv, ast.Mod),
        frozenset({"flat", "slot", "slots", "pte", "ptes", "group"}),
        "PTE_BYTES or PTES_PER_GROUP",
    ),
    0xFFFF: (
        (ast.BitAnd,),
        frozenset({"ea", "va", "addr", "address", "page"}),
        "PAGE_INDEX_MASK",
    ),
    28: (
        (ast.RShift, ast.LShift),
        frozenset({"ea", "va", "addr", "address", "segment"}),
        "SEGMENT_SHIFT",
    ),
    0xFFF: (
        (ast.BitAnd,),
        frozenset({"ea", "va", "pa", "addr", "address"}),
        "PAGE_OFFSET_MASK",
    ),
    4096: (
        (ast.Mult, ast.FloorDiv, ast.Mod),
        frozenset({"ea", "va", "pa", "addr", "address", "page", "pages"}),
        "PAGE_SIZE",
    ),
    16384: (
        (ast.Mod,),
        frozenset({"flat", "slot", "slots", "position", "cursor"}),
        "HTAB_PTE_SLOTS (or better, the table's own .slots)",
    ),
}


def _identifier_words(node: ast.AST) -> Set[str]:
    """Snake-case fragments of every identifier under ``node``."""
    words: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            words.update(sub.id.lower().split("_"))
        elif isinstance(sub, ast.Attribute):
            words.update(sub.attr.lower().split("_"))
    return words


def _bare_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


class GeometryLiteralRule(Rule):
    id = "geometry-literal"
    description = (
        "address arithmetic names its geometry via repro.params "
        "(PTE_BYTES, PAGE_INDEX_MASK, ...), never bare 8/0xFFFF-style "
        "literals"
    )
    # Style-adjacent (a magic number is suspect, not provably wrong):
    # the one warn-severity rule in the shipped set.
    severity = "warn"

    def check_file(self, ctx: FileContext, report: Report) -> None:
        if ctx.layer not in _GEOMETRY_LAYERS:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                self._check_binop(node, report)
            elif isinstance(node, ast.Call):
                self._check_divmod(node, report)

    def _check_binop(self, node: ast.BinOp, report: Report) -> None:
        for literal, operand in (
            (node.right, node.left), (node.left, node.right),
        ):
            value = _bare_int(literal)
            if value is None:
                continue
            entry = _GEOMETRY_LITERALS.get(value)
            if entry is None:
                continue
            ops, domain_words, replacement = entry
            if not isinstance(node.op, ops):
                continue
            if _identifier_words(operand) & domain_words:
                self._report(report, node, value, replacement)
                return

    def _check_divmod(self, node: ast.Call, report: Report) -> None:
        """``divmod(flat, 8)`` is ``// 8`` and ``% 8`` in one call."""
        if dotted_name(node.func) != "divmod" or len(node.args) != 2:
            return
        value = _bare_int(node.args[1])
        entry = _GEOMETRY_LITERALS.get(value) if value is not None else None
        if entry is None:
            return
        _ops, domain_words, replacement = entry
        if _identifier_words(node.args[0]) & domain_words:
            self._report(report, node, value, replacement)

    @staticmethod
    def _report(
        report: Report, node: ast.AST, value: int, replacement: str,
    ) -> None:
        report(
            node,
            f"bare geometry literal {value} in address/slot arithmetic "
            f"aliases a named constant; use {replacement}",
        )
