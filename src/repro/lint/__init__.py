"""repro-lint: domain-aware static analysis (DESIGN.md "lint").

The repo stakes hard guarantees on *disciplines* — traced runs are
bit-identical to untraced ones, the profiler's attribution sums exactly
to the ledger, the lazy-flush protocol never serves a stale
translation.  Every one of those was enforced only at runtime, on the
paths a test happened to exercise.  This package enforces them at the
line that introduces a violation, on every line:

* per-file rules — determinism (unseeded randomness, wall-clock reads,
  set-iteration order), layering, the zero-perturbation observer
  contract, hook-guard discipline, error discipline;
* closure passes — ledger categories vs the profiler taxonomy, event
  names vs the ``obs/events.py`` registry, invariants vs the
  ``full_sweep`` suite.

Run it with ``python -m repro lint`` (``--list-rules`` for the
catalog).  Suppress a finding inline with
``# repro-lint: disable=<rule> -- <justification>`` or grandfather it
in the committed ``lint-baseline.json``.
"""

from __future__ import annotations

from repro.lint.baseline import BASELINE_NAME, Baseline
from repro.lint.engine import (
    ALL_RULES,
    KNOWN_RULE_IDS,
    LintEngine,
    LintResult,
    rule_catalog,
)
from repro.lint.findings import Finding

__all__ = [
    "ALL_RULES",
    "BASELINE_NAME",
    "Baseline",
    "Finding",
    "KNOWN_RULE_IDS",
    "LintEngine",
    "LintResult",
    "rule_catalog",
]
