"""The sweep-style invariant suite over a whole machine + kernel.

Each check walks one hardware or kernel structure and validates it
against the shadow's ground truth.  All reads are pure (``iter_valid``,
``live_entries``, ``snapshot``, page-table ``lookup``) so a sweep never
charges cycles or bumps monitor counters.

Every invariant is one-directional, matching DESIGN.md's key safety
invariant: *no stale translation is ever served*.  Missing cached
entries are always legal (that is what flushes, evictions and zombie
reclaim produce); present entries that disagree with the Linux page
tables, the VSID liveness sets or the allocator bookkeeping are not.
"""

from __future__ import annotations

from typing import Callable

from repro.kernel.vsid import ContextCounterVsids, kernel_vsids
from repro.params import PAGE_SHIFT, SEGMENT_SHIFT

Record = Callable[[str, str], object]


def _owner_pte(mm, segment: int, page_index: int):
    """Linux PTE backing a cached translation owned by (mm, segment)."""
    ea = (segment << SEGMENT_SHIFT) | (page_index << PAGE_SHIFT)
    pte = mm.page_table.lookup(ea).pte
    if pte is None or not pte.present:
        return None, ea
    return pte, ea


def check_tlbs(kernel, shadow, record: Record) -> None:
    """Live-VSID TLB entries must agree with the owner's page table.

    Entries under retired VSIDs are the §7 design — unreachable, left to
    rot — and are deliberately not flagged.
    """
    owners = shadow.ownership()
    for cpu in kernel.machine.cpus:
        pending = shadow.pending[cpu.index]
        for tlb in (cpu.itlb, cpu.dtlb):
            name = f"cpu{cpu.index} {tlb.name}"
            for entry in tlb.live_entries():
                owner = owners.get(entry.vsid)
                if owner is None:
                    continue  # zombie entry: unreachable by construction
                if (entry.vsid, entry.page_index) in pending:
                    # Known-stale, awaiting this CPU's deferred drain —
                    # holding it is the lazy protocol working; *serving*
                    # it is the shootdown-coherence violation.
                    continue
                mm, segment = owner
                pte, ea = _owner_pte(mm, segment, entry.page_index)
                if pte is None:
                    record(
                        "stale-tlb-entry",
                        f"{name} vsid={entry.vsid:#x} ea={ea:#x} maps "
                        f"pfn={entry.ppn} but the page table has no mapping",
                    )
                elif pte.pfn != entry.ppn:
                    record(
                        "stale-tlb-entry",
                        f"{name} vsid={entry.vsid:#x} ea={ea:#x} maps "
                        f"pfn={entry.ppn}, page table says pfn={pte.pfn}",
                    )
                elif entry.writable and not pte.writable:
                    record(
                        "tlb-writable-mismatch",
                        f"{name} vsid={entry.vsid:#x} ea={ea:#x} is "
                        "writable but the page table says read-only",
                    )


def check_htab(kernel, shadow, record: Record) -> None:
    """Valid live-VSID hash-table PTEs must agree with the page tables."""
    owners = shadow.ownership()
    seen = {}
    for group, slot, pte in kernel.machine.htab.iter_valid():
        key = (pte.vsid, pte.page_index)
        if key in seen:
            record(
                "duplicate-htab-entry",
                f"vsid={pte.vsid:#x} page_index={pte.page_index:#x} valid "
                f"in slots {seen[key]} and {(group, slot)}",
            )
        seen[key] = (group, slot)
        owner = owners.get(pte.vsid)
        if owner is None:
            continue  # zombie PTE: §7 leaves these for the idle task
        mm, segment = owner
        linux_pte, ea = _owner_pte(mm, segment, pte.page_index)
        if linux_pte is None:
            record(
                "stale-htab-entry",
                f"PTEG {group} slot {slot} vsid={pte.vsid:#x} ea={ea:#x} "
                f"maps rpn={pte.rpn} but the page table has no mapping",
            )
        elif linux_pte.pfn != pte.rpn:
            record(
                "stale-htab-entry",
                f"PTEG {group} slot {slot} vsid={pte.vsid:#x} ea={ea:#x} "
                f"maps rpn={pte.rpn}, page table says pfn={linux_pte.pfn}",
            )


def check_segments(kernel, record: Record) -> None:
    """Every CPU's segment registers carry its current context's VSIDs.

    With no current task on a CPU only its kernel segments are checked —
    Linux leaves the previous task's user VSIDs loaded while in kernel
    mode, which is harmless because nothing uses user addresses then.
    """
    for cpu_index, task in enumerate(kernel._current_tasks):
        registers = kernel.machine.cpus[cpu_index].segments.snapshot()
        if task is not None:
            expected = task.mm.segment_vsids()
        else:
            expected = list(registers[:12]) + kernel_vsids()
        for index, (got, want) in enumerate(zip(registers, expected)):
            if got != want:
                record(
                    "segment-mismatch",
                    f"cpu{cpu_index} segment register {index} holds "
                    f"vsid={got:#x}, expected {want:#x}",
                )


def check_precleared(kernel, shadow, record: Record) -> None:
    """Pages on the §9 pre-cleared list really are zero and really free."""
    palloc = kernel.palloc
    for pfn in palloc.precleared_pages():
        if not shadow.is_zeroed(pfn):
            record(
                "precleared-dirty",
                f"frame {pfn} on the pre-cleared list was written since "
                "it was cleared",
            )
        if palloc.is_allocated(pfn):
            record(
                "precleared-allocated",
                f"frame {pfn} is simultaneously allocated and on the "
                "pre-cleared list",
            )


def check_frame_ownership(kernel, record: Record) -> None:
    """Resident frames are allocated, and private frames have one owner."""
    owners = {}
    for task in kernel.tasks.values():
        mm = task.mm
        for base, pfn in mm.resident.items():
            if not kernel.palloc.is_allocated(pfn):
                record(
                    "frame-not-allocated",
                    f"pid {task.pid} ea={base:#x} is resident in frame "
                    f"{pfn}, which the allocator considers free",
                )
            if pfn in mm.shared_pages:
                continue  # page-cache frames are shared by design
            previous = owners.get(pfn)
            if previous is not None:
                record(
                    "frame-multiply-owned",
                    f"frame {pfn} is private-resident in pid {task.pid} "
                    f"(ea={base:#x}) and pid {previous[0]} "
                    f"(ea={previous[1]:#x})",
                )
            owners[pfn] = (task.pid, base)


def check_allocator(kernel, record: Record) -> None:
    """Allocator bookkeeping agrees with who actually holds VSIDs.

    Only valid at stable points: a context being renumbered mid-bump and
    mms still under construction (fork/spawn before task registration)
    legitimately hold in-flight allocations.
    """
    allocator = kernel.vsid_allocator
    live = allocator.live_vsids()
    zombies = allocator.zombie_vsids()
    expected = set(kernel_vsids())
    for task in kernel.tasks.values():
        if task.mm is kernel._mm_in_bump:
            continue
        for vsid in task.mm.user_vsids:
            if vsid not in live:
                record(
                    "task-holds-dead-vsid",
                    f"pid {task.pid} holds vsid={vsid:#x} the allocator "
                    "does not consider live",
                )
            expected.add(vsid)
    overlap = zombies & live
    for vsid in sorted(overlap):
        record(
            "zombie-live-overlap",
            f"vsid={vsid:#x} is simultaneously live and zombie",
        )
    if isinstance(allocator, ContextCounterVsids):
        # Contexts the counter considers live must all be accounted for
        # by the kernel or a task — anything else leaked (e.g. a reset
        # path that forgot to renumber).
        for vsid in sorted(live - expected):
            if (
                kernel._mm_in_bump is not None
                and vsid in kernel._mm_in_bump.user_vsids
            ):
                continue
            record(
                "live-vsid-unowned",
                f"vsid={vsid:#x} is live but no task or kernel segment "
                "owns it",
            )


def check_shootdown(kernel, shadow, record: Record) -> None:
    """The deferred shootdown queues are safe and soundly mirrored.

    Three clauses: a queued VSID must not be loaded in the target CPU's
    segment registers (else deferral was unsafe), must never be a kernel
    VSID (kernel flushes are always broadcast eagerly), and the engine's
    queues must agree key-for-key with the shadow's pending sets.
    """
    protected = set(kernel_vsids())
    for cpu_index, queue in enumerate(kernel.shootdown.deferred):
        keys = set(queue)
        segments = set(
            kernel.machine.cpus[cpu_index].segments.snapshot()
        )
        for vsid, page_index in sorted(keys):
            if vsid in protected:
                record(
                    "shootdown-kernel-vsid-deferred",
                    f"kernel vsid={vsid:#x} page_index={page_index:#x} "
                    f"sits in cpu{cpu_index}'s deferred queue — kernel "
                    "invalidations must broadcast eagerly",
                )
            if vsid in segments:
                record(
                    "shootdown-reachable-vsid-deferred",
                    f"vsid={vsid:#x} page_index={page_index:#x} is "
                    f"deferred on cpu{cpu_index} while loaded in its "
                    "segment registers",
                )
        if keys != shadow.pending[cpu_index]:
            record(
                "shootdown-shadow-divergence",
                f"cpu{cpu_index} deferred queue has {len(keys)} keys but "
                f"the shadow mirror has {len(shadow.pending[cpu_index])}",
            )


def full_sweep(kernel, shadow, record: Record, stable: bool = True) -> None:
    """Run every invariant; ``stable=False`` for mid-operation sweeps."""
    check_tlbs(kernel, shadow, record)
    check_htab(kernel, shadow, record)
    check_segments(kernel, record)
    check_precleared(kernel, shadow, record)
    check_frame_ownership(kernel, record)
    check_shootdown(kernel, shadow, record)
    if stable:
        check_allocator(kernel, record)
