"""The differential sanitizer: hardware vs shadow, on every translation.

Attached to a machine (``machine.sanitizer``), it receives:

* every translation the datapath serves (BAT, TLB hit, 604 hardware
  walk, software refill) via :meth:`check_translation`;
* the kernel's flush/bump/reclaim/preclear commit points via the
  ``after_*`` / ``check_*`` event hooks (O(1) each, pure reads only);
* optional periodic and on-demand full sweeps of the invariant suite
  (:mod:`repro.check.invariants`).

It must never perturb what it observes: all machine reads go through
counter-free accessors (``peek``, ``pte_at``, ``snapshot``, page-table
``lookup``), so cycle ledgers, hit rates and the miss histogram are
bit-identical with the sanitizer on or off.
"""

from __future__ import annotations

from typing import Optional

from repro.check.invariants import full_sweep
from repro.check.report import ViolationReporter
from repro.check.shadow import ShadowMMU
from repro.hw.access import AccessKind
from repro.params import PAGE_INDEX_MASK, PAGE_SHIFT


class Sanitizer:
    """One machine's shadow-MMU cross-validator."""

    def __init__(
        self,
        kernel,
        reporter: Optional[ViolationReporter] = None,
        sweep_every: int = 0,
        label: Optional[str] = None,
    ):
        self.kernel = kernel
        self.machine = kernel.machine
        self.reporter = reporter if reporter is not None else ViolationReporter()
        self.shadow = ShadowMMU(kernel)
        #: Run a (non-stable) full sweep every N checked translations;
        #: 0 disables periodic sweeps.
        self.sweep_every = sweep_every
        self.label = label
        self.translations_checked = 0
        self.sweeps = 0

    # -- bookkeeping ---------------------------------------------------------------

    @property
    def violations(self) -> int:
        return self.reporter.total

    def _record(self, invariant: str, detail: str) -> None:
        if self.label:
            detail = f"[{self.label}] {detail}"
        self.reporter.record(invariant, detail)

    # -- the per-translation differential check --------------------------------------

    def check_translation(self, ea: int, kind: AccessKind, write: bool, result) -> None:
        """Validate one served translation against ground truth."""
        self.translations_checked += 1
        pfn = result.pa >> PAGE_SHIFT
        expected = self.shadow.expected_frame(ea, kind)
        if expected is None:
            if self.shadow.mm_for(ea) is None:
                self._record(
                    "user-access-without-task",
                    f"user ea={ea:#x} translated ({result.path}) with no "
                    "current task",
                )
            else:
                self._record(
                    "phantom-translation",
                    f"ea={ea:#x} served pfn={pfn} via {result.path} but "
                    "ground truth has no mapping",
                )
        elif expected != pfn:
            self._record(
                "stale-translation",
                f"ea={ea:#x} served pfn={pfn} via {result.path}, ground "
                f"truth says pfn={expected}",
            )
        if result.path != "bat":
            vsid = self.machine.segments.vsid_for(ea)
            if result.path == "tlb":
                # SMP shootdown coherence: a TLB hit on a translation
                # another CPU invalidated (and this CPU has not yet
                # drained) is exactly the stale-remote-TLB bug the
                # shootdown protocol exists to prevent.
                cpu = self.machine.current_cpu
                page_index = (ea >> PAGE_SHIFT) & PAGE_INDEX_MASK
                if (vsid, page_index) in self.shadow.pending[cpu]:
                    self._record(
                        "shootdown-coherence",
                        f"cpu{cpu} TLB served ea={ea:#x} vsid={vsid:#x} "
                        "while its invalidation is still pending in the "
                        "deferred shootdown queue",
                    )
            if not self.kernel.vsid_allocator.is_live(vsid):
                self._record(
                    "dead-vsid-served",
                    f"ea={ea:#x} translated under retired vsid={vsid:#x} "
                    f"via {result.path}",
                )
            expected_vsid = self.shadow.expected_vsid(ea)
            if expected_vsid is not None and vsid != expected_vsid:
                self._record(
                    "segment-register-stale",
                    f"ea={ea:#x} used vsid={vsid:#x}, current context "
                    f"expects {expected_vsid:#x}",
                )
        if write:
            self.shadow.note_write_frame(pfn)
        if self.sweep_every and self.translations_checked % self.sweep_every == 0:
            self.sweep(stable=False)

    # -- kernel event hooks (O(1), pure reads) ------------------------------------------

    def after_page_flush(self, mm, ea: int, vsid: int) -> None:
        """A single-page flush committed: nothing may still match it."""
        page_index = (ea >> PAGE_SHIFT) & PAGE_INDEX_MASK
        pte = self.machine.htab.peek(vsid, page_index)
        if pte is not None:
            self._record(
                "flush-left-htab-entry",
                f"flush_page(ea={ea:#x}) left a valid hash PTE under "
                f"vsid={vsid:#x} (rpn={pte.rpn})",
            )
        for tlb in (self.machine.itlb, self.machine.dtlb):
            if tlb.peek(vsid, page_index) is not None:
                self._record(
                    "flush-left-tlb-entry",
                    f"flush_page(ea={ea:#x}) left a {tlb.name} entry "
                    f"under vsid={vsid:#x}",
                )

    def after_context_bump(self, mm, old_vsids, new_vsids) -> None:
        """A §7 lazy flush committed: the old context must be unreachable."""
        allocator = self.kernel.vsid_allocator
        for vsid in old_vsids:
            if allocator.is_live(vsid):
                self._record(
                    "bump-left-live-vsid",
                    f"bumped vsid={vsid:#x} is still live",
                )
        for vsid in new_vsids:
            if not allocator.is_live(vsid):
                self._record(
                    "bump-vsid-not-live",
                    f"freshly bumped vsid={vsid:#x} is not live",
                )
        task = self.kernel.current_task
        if task is not None and task.mm is mm:
            registers = self.machine.segments.snapshot()
            if list(registers) != mm.segment_vsids():
                self._record(
                    "segments-stale-after-bump",
                    "segment registers were not reloaded after bumping "
                    "the current context",
                )

    def after_global_flush(self) -> None:
        """flush_everything committed: hardware empty, allocator coherent."""
        machine = self.machine
        valid = machine.htab.valid_entries()
        if valid:
            self._record(
                "global-flush-left-htab",
                f"{valid} valid hash PTEs survived flush_everything",
            )
        for cpu in machine.cpus:
            for tlb in (cpu.itlb, cpu.dtlb):
                if len(tlb):
                    self._record(
                        "global-flush-left-tlb",
                        f"{len(tlb)} cpu{cpu.index} {tlb.name} entries "
                        "survived flush_everything",
                    )
        # Every deferred invalidation is moot once every TLB is empty.
        self.shadow.clear_pending()
        zombies = self.kernel.vsid_allocator.zombie_vsids()
        if zombies:
            self._record(
                "global-flush-left-zombies",
                f"{len(zombies)} zombie VSIDs survived flush_everything",
            )
        from repro.check.invariants import check_allocator

        check_allocator(self.kernel, self._record)

    def after_reclaim_slot(self, flat: int, pte) -> None:
        """The idle task reclaimed one slot: it must be a dead zombie."""
        if pte.valid:
            self._record(
                "reclaim-left-valid",
                f"reclaimed slot {flat} still has its valid bit set",
            )
        if self.kernel.vsid_allocator.is_live(pte.vsid):
            self._record(
                "reclaim-reclaimed-live",
                f"idle reclaim invalidated live vsid={pte.vsid:#x} "
                f"page_index={pte.page_index:#x} (slot {flat})",
            )

    # -- SMP shootdown hooks ----------------------------------------------------------

    def after_shootdown_defer(self, cpu: int, keys) -> None:
        """Invalidations were queued on a remote CPU instead of IPI'd.

        Deferral is only safe while the target cannot reach the VSIDs:
        its segment registers must not hold any of them (the drain runs
        before any task that could is installed).
        """
        segments = set(self.machine.cpus[cpu].segments.snapshot())
        for vsid, page_index in keys:
            if vsid in segments:
                self._record(
                    "shootdown-unsafe-defer",
                    f"invalidation of vsid={vsid:#x} "
                    f"page_index={page_index:#x} deferred to cpu{cpu}, "
                    "whose live segment registers hold that vsid",
                )
        self.shadow.note_deferred(cpu, keys)

    def after_remote_invalidate(self, cpu: int, keys) -> None:
        """A synchronous IPI scrubbed a remote CPU's TLBs: verify it."""
        state = self.machine.cpus[cpu]
        for vsid, page_index in keys:
            for tlb in (state.itlb, state.dtlb):
                if tlb.peek(vsid, page_index) is not None:
                    self._record(
                        "shootdown-left-remote-tlb",
                        f"IPI shootdown left a cpu{cpu} {tlb.name} entry "
                        f"for vsid={vsid:#x} page_index={page_index:#x}",
                    )
        # An eager invalidate supersedes any earlier deferral of the key.
        self.shadow.note_invalidated(cpu, keys)

    def after_shootdown_drain(self, cpu: int, keys) -> None:
        """A CPU drained its deferred queue at context-switch time."""
        state = self.machine.cpus[cpu]
        for vsid, page_index in keys:
            for tlb in (state.itlb, state.dtlb):
                if tlb.peek(vsid, page_index) is not None:
                    self._record(
                        "shootdown-drain-left-tlb",
                        f"drain left a cpu{cpu} {tlb.name} entry for "
                        f"vsid={vsid:#x} page_index={page_index:#x}",
                    )
        drained = set(keys)
        mirrored = self.shadow.pending[cpu]
        if drained != mirrored:
            self._record(
                "shootdown-drain-mismatch",
                f"cpu{cpu} drained {len(drained)} deferred invalidations "
                f"but the shadow mirror holds {len(mirrored)}",
            )
        self.shadow.clear_pending(cpu)

    # -- §9 zero-page hooks ---------------------------------------------------------------

    def note_page_cleared(self, pfn: int) -> None:
        self.shadow.note_cleared(pfn)

    def check_precleared_push(self, pfn: int) -> None:
        if not self.shadow.is_zeroed(pfn):
            self._record(
                "precleared-not-zero",
                f"frame {pfn} pushed onto the pre-cleared list without "
                "being zeroed",
            )

    def check_precleared_pop(self, pfn: int) -> None:
        if not self.shadow.is_zeroed(pfn):
            self._record(
                "precleared-dirty",
                f"get_free_page handed out pre-cleared frame {pfn} that "
                "is no longer zero",
            )

    # -- sweeps ------------------------------------------------------------------------------

    def sweep(self, stable: bool = True) -> int:
        """Run the full invariant suite; returns new violations found."""
        before = self.reporter.total
        full_sweep(self.kernel, self.shadow, self._record, stable=stable)
        self.sweeps += 1
        return self.reporter.total - before
