"""Drive the experiment registry with the sanitizer enabled.

``run_checked`` wraps each registered experiment in a reporter context,
lets every Simulator the experiment builds auto-attach a sanitizer via
the global-check hook, and finishes each experiment with a stable full
sweep of every machine it created.  This is the engine behind
``python -m repro check``.

Kept out of :mod:`repro.check`'s ``__init__`` on purpose: importing the
experiment registry here would cycle back through the simulator into the
check package.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.analysis import engine, specs
from repro.check import (
    disable_global_sanitizer,
    drain_global_sanitizers,
    enable_global_sanitizer,
)
from repro.check.report import ViolationReporter


@dataclass
class ExperimentCheck:
    """Outcome of one experiment run under the sanitizer."""

    experiment: str
    shape_holds: bool
    violations: int
    seconds: float
    machines: int
    translations: int


@dataclass
class CheckRun:
    """Aggregate of a full sanitizer run."""

    reporter: ViolationReporter
    results: List[ExperimentCheck] = field(default_factory=list)

    @property
    def total_violations(self) -> int:
        return self.reporter.total

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def report(self) -> str:
        lines = []
        for r in self.results:
            status = "ok" if r.violations == 0 else f"{r.violations} VIOLATIONS"
            lines.append(
                f"  {r.experiment:<4} {status:<15} "
                f"{r.translations:>12,} translations checked  "
                f"({r.machines} machine(s), {r.seconds:6.1f}s)"
            )
        lines.append(self.reporter.summary())
        return "\n".join(lines)

    def to_record(self) -> dict:
        """Machine-readable form for ``repro check --json``.

        Wall-clock seconds are deliberately omitted so two identical
        runs serialize identically (the JSON is meant to be diffed).
        """
        return {
            "ok": self.ok,
            "total_violations": self.total_violations,
            "experiments": [
                {
                    "id": r.experiment,
                    "shape_holds": r.shape_holds,
                    "violations": r.violations,
                    "machines": r.machines,
                    "translations": r.translations,
                }
                for r in self.results
            ],
            "violations": self.reporter.to_record(),
        }


def run_checked(
    ids: Optional[Sequence[str]] = None,
    sweep_every: int = 50_000,
    progress: Optional[Callable[[str], None]] = None,
) -> CheckRun:
    """Run experiments (all by default) with the sanitizer attached.

    Each experiment gets its own reporter context so the summary breaks
    violations down per experiment.  ``sweep_every`` sets the periodic
    mid-run sweep cadence (in checked translations); a stable full sweep
    always runs at the end of each experiment.
    """
    if ids is None:
        ids = specs.sorted_ids()
    reporter = enable_global_sanitizer(sweep_every=sweep_every)
    run = CheckRun(reporter)
    try:
        for experiment_id in ids:
            key = experiment_id.upper()
            if key not in specs.SPECS:
                raise KeyError(experiment_id)
            if progress is not None:
                progress(key)
            reporter.begin_context(key)
            before = reporter.total
            start = time.monotonic()
            result = engine.execute(specs.SPECS[key])
            sanitizers = drain_global_sanitizers()
            translations = 0
            for sanitizer in sanitizers:
                sanitizer.sweep(stable=True)
                translations += sanitizer.translations_checked
            run.results.append(
                ExperimentCheck(
                    experiment=key,
                    shape_holds=result.shape_holds,
                    violations=reporter.total - before,
                    seconds=time.monotonic() - start,
                    machines=len(sanitizers),
                    translations=translations,
                )
            )
            reporter.end_context()
    finally:
        disable_global_sanitizer()
    return run
