"""The shadow MMU: ground truth the hardware state is validated against.

The Linux page tables are "the initial source of PTEs" — the hash table
and TLBs are only caches of them, and the VSID allocator decides which
cached entries are reachable at all.  :class:`ShadowMMU` therefore never
mirrors events; it *re-derives* the expected outcome of any translation
from the page tables, the VSID liveness sets and the BAT array, all via
pure reads (``peek`` / ``pte_at`` / ``lookup``) so observing the machine
never perturbs the cycle ledger or the monitor counters the experiments
measure.

The one piece of genuinely shadowed state is page-zeroing: the §9
pre-cleared list promises callers a zero page, which nothing in the
model can re-derive, so the shadow tracks which frames were cleared and
forgets them again on any translated write to the frame.

SMP adds a second shadowed structure: per-CPU pending-invalidation sets
(the "per-CPU shadow TLBs").  When the shootdown engine defers a remote
invalidation, the shadow mirrors the queued ``(vsid, page_index)`` key
for that CPU; a TLB hit on a pending key is the shootdown-coherence
violation — a CPU translating through an entry another CPU invalidated.
The shared hash table needs no SMP shadow of its own: it is validated
against the (shared) Linux page tables exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.hw.access import AccessKind
from repro.kernel.vsid import NUM_USER_SEGMENTS, kernel_vsids
from repro.params import (
    KERNELBASE,
    NUM_SEGMENT_REGISTERS,
    PAGE_SHIFT,
    SEGMENT_SHIFT,
)


class ShadowMMU:
    """Ground-truth oracle over one kernel's MMU state."""

    def __init__(self, kernel):
        self.kernel = kernel
        #: Frames known to contain zeroes (cleared, never written since).
        self._zeroed: Set[int] = set()
        #: Per-CPU pending remote invalidations the shootdown engine has
        #: deferred: a mirror of its queues, keyed (vsid, page_index).
        self.pending: List[Set[Tuple[int, int]]] = [
            set() for _ in range(kernel.machine.n_cpus)
        ]

    # -- address resolution --------------------------------------------------------

    def mm_for(self, ea: int):
        """The address space that owns ``ea`` right now (None if no task)."""
        if ea >= KERNELBASE:
            return self.kernel.kernel_mm
        task = self.kernel.current_task
        return task.mm if task is not None else None

    def expected_frame(self, ea: int, kind: AccessKind) -> Optional[int]:
        """The frame a translation of ``ea`` must resolve to, or None.

        Recomputes the BAT match (BATs win over page translation, §3)
        and otherwise consults the owning address space's Linux page
        table — the source of truth every cached translation must agree
        with.
        """
        machine = self.kernel.machine
        bat = machine.bats.lookup(
            ea, instruction=kind is AccessKind.INSTRUCTION
        )
        if bat is not None:
            return bat.translate(ea) >> PAGE_SHIFT
        mm = self.mm_for(ea)
        if mm is None:
            return None
        pte = mm.page_table.lookup(ea).pte
        if pte is None or not pte.present:
            return None
        return pte.pfn

    def expected_vsid(self, ea: int) -> Optional[int]:
        """The VSID the segment registers should supply for ``ea``."""
        segment = (ea >> SEGMENT_SHIFT) & (NUM_SEGMENT_REGISTERS - 1)
        if segment >= NUM_USER_SEGMENTS:
            return kernel_vsids()[segment - NUM_USER_SEGMENTS]
        task = self.kernel.current_task
        if task is None:
            return None
        return task.mm.user_vsids[segment]

    def ownership(self) -> Dict[int, Tuple[object, int]]:
        """Map every live VSID to its ``(mm, segment)`` owner.

        Rebuilt on demand from the kernel's task table — the shadow does
        not track allocation events, so it cannot drift from the thing it
        is validating.
        """
        owners: Dict[int, Tuple[object, int]] = {}
        for segment, vsid in enumerate(kernel_vsids(), start=NUM_USER_SEGMENTS):
            owners[vsid] = (self.kernel.kernel_mm, segment)
        for task in self.kernel.tasks.values():
            for segment, vsid in enumerate(task.mm.user_vsids):
                owners[vsid] = (task.mm, segment)
        return owners

    def frame_for_owner(self, mm, segment: int, page_index: int) -> Optional[int]:
        """Expected frame for a cached (VSID-owned) translation."""
        ea = (segment << SEGMENT_SHIFT) | (page_index << PAGE_SHIFT)
        pte = mm.page_table.lookup(ea).pte
        if pte is None or not pte.present:
            return None
        return pte.pfn

    # -- pending-invalidation tracking (SMP shootdown) ---------------------------------

    def note_deferred(self, cpu: int, keys) -> None:
        self.pending[cpu].update(keys)

    def note_invalidated(self, cpu: int, keys) -> None:
        self.pending[cpu].difference_update(keys)

    def clear_pending(self, cpu: Optional[int] = None) -> None:
        if cpu is None:
            for pending in self.pending:
                pending.clear()
        else:
            self.pending[cpu].clear()

    # -- page-zero tracking -----------------------------------------------------------

    def note_cleared(self, pfn: int) -> None:
        self._zeroed.add(pfn)

    def note_write_frame(self, pfn: int) -> None:
        self._zeroed.discard(pfn)

    def is_zeroed(self, pfn: int) -> bool:
        return pfn in self._zeroed
