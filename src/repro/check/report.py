"""Violation recording and reporting for the shadow-MMU sanitizer.

A :class:`ViolationReporter` accumulates invariant violations grouped by
*context* — one context per experiment when driven by ``repro check``,
or the ``default`` context for a directly attached sanitizer.  Counts
are complete; full violation records are capped per context so a
systematically broken invariant cannot eat unbounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Violation:
    """One detected breach of a coherence invariant."""

    #: Short invariant name, e.g. ``stale-tlb-entry``.
    invariant: str
    #: Human-readable specifics (addresses, VSIDs, frames involved).
    detail: str
    #: The reporting context (experiment id) it occurred under.
    context: str


class ViolationReporter:
    """Accumulates violations, grouped per context."""

    #: Full records kept per context; counts are always complete.
    MAX_RECORDED_PER_CONTEXT = 50

    def __init__(self):
        self.total = 0
        self.context = "default"
        self._counts: Dict[str, Dict[str, int]] = {}
        self._recorded: Dict[str, List[Violation]] = {}

    # -- context management ------------------------------------------------------

    def begin_context(self, label: str) -> None:
        self.context = label

    def end_context(self) -> None:
        self.context = "default"

    # -- recording ----------------------------------------------------------------

    def record(self, invariant: str, detail: str) -> Violation:
        violation = Violation(invariant, detail, self.context)
        self.total += 1
        counts = self._counts.setdefault(self.context, {})
        counts[invariant] = counts.get(invariant, 0) + 1
        recorded = self._recorded.setdefault(self.context, [])
        if len(recorded) < self.MAX_RECORDED_PER_CONTEXT:
            recorded.append(violation)
        return violation

    # -- queries --------------------------------------------------------------------

    def count(self, context: Optional[str] = None) -> int:
        """Violations recorded in one context (or in total)."""
        if context is None:
            return self.total
        return sum(self._counts.get(context, {}).values())

    def contexts(self) -> List[str]:
        return sorted(self._counts)

    def violations(self, context: Optional[str] = None) -> List[Violation]:
        if context is not None:
            return list(self._recorded.get(context, []))
        return [v for ctx in sorted(self._recorded) for v in self._recorded[ctx]]

    def counts_by_invariant(self, context: str) -> Dict[str, int]:
        return dict(self._counts.get(context, {}))

    def to_record(self) -> Dict:
        """Machine-readable form for ``repro check --json``."""
        return {
            "total": self.total,
            "contexts": {
                context: {
                    "counts": self.counts_by_invariant(context),
                    "recorded": [
                        {"invariant": v.invariant, "detail": v.detail}
                        for v in self.violations(context)
                    ],
                }
                for context in self.contexts()
            },
        }

    # -- formatting -------------------------------------------------------------------

    def summary(self) -> str:
        """Per-context breakdown, one line per (context, invariant)."""
        if self.total == 0:
            return "no invariant violations"
        lines = [f"{self.total} invariant violation(s)"]
        for context in self.contexts():
            for invariant, count in sorted(self._counts[context].items()):
                lines.append(f"  {context:<10} {invariant:<28} x{count}")
        shown = self.violations()
        if shown:
            lines.append("first recorded violations:")
            for violation in shown[:10]:
                lines.append(
                    f"  [{violation.context}] {violation.invariant}: "
                    f"{violation.detail}"
                )
        return "\n".join(lines)
