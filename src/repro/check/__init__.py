"""Shadow-MMU coherence sanitizer (DESIGN.md "check" subsystem).

Two ways to turn it on:

* per simulator — ``Simulator(spec, config, sanitize=True)`` or
  ``attach_sanitizer(kernel)`` directly;
* globally — ``enable_global_sanitizer()`` makes every Simulator built
  afterwards attach one automatically, all feeding a shared
  :class:`ViolationReporter`.  This is how ``python -m repro check``
  instruments experiment code it does not construct itself.

This module must not import :mod:`repro.check.runner` — the runner pulls
in the experiment registry, which imports the simulator, which imports
this package.  The CLI imports the runner directly.
"""

from __future__ import annotations

# repro-lint: disable-file=effect-race -- _GLOBAL is per-process sanitizer state: a worker inherits a private copy at fork and reports via return values, never through the parent's module

from typing import List, Optional

from repro.check.report import Violation, ViolationReporter
from repro.check.sanitizer import Sanitizer
from repro.check.shadow import ShadowMMU

__all__ = [
    "Sanitizer",
    "ShadowMMU",
    "Violation",
    "ViolationReporter",
    "attach_sanitizer",
    "disable_global_sanitizer",
    "drain_global_sanitizers",
    "enable_global_sanitizer",
    "global_check_active",
]


class _GlobalCheck:
    """Process-wide sanitizer state, active between enable/disable."""

    def __init__(self):
        self.active = False
        self.reporter: Optional[ViolationReporter] = None
        self.sweep_every = 0
        self.sanitizers: List[Sanitizer] = []


_GLOBAL = _GlobalCheck()


def enable_global_sanitizer(
    reporter: Optional[ViolationReporter] = None, sweep_every: int = 0
) -> ViolationReporter:
    """Attach a sanitizer to every subsequently-built Simulator."""
    _GLOBAL.active = True
    _GLOBAL.reporter = reporter if reporter is not None else ViolationReporter()
    _GLOBAL.sweep_every = sweep_every
    _GLOBAL.sanitizers = []
    return _GLOBAL.reporter


def disable_global_sanitizer() -> None:
    _GLOBAL.active = False
    _GLOBAL.reporter = None
    _GLOBAL.sweep_every = 0
    _GLOBAL.sanitizers = []


def global_check_active() -> bool:
    return _GLOBAL.active


def drain_global_sanitizers() -> List[Sanitizer]:
    """Hand over (and forget) the sanitizers attached since enable."""
    sanitizers = _GLOBAL.sanitizers
    _GLOBAL.sanitizers = []
    return sanitizers


def attach_sanitizer(
    kernel,
    reporter: Optional[ViolationReporter] = None,
    sweep_every: Optional[int] = None,
    label: Optional[str] = None,
) -> Sanitizer:
    """Build a :class:`Sanitizer` for ``kernel`` and hook the machine.

    While the global check is active, the global reporter and sweep
    cadence are used (unless explicitly overridden) and the sanitizer is
    registered for :func:`drain_global_sanitizers`.
    """
    if _GLOBAL.active:
        if reporter is None:
            reporter = _GLOBAL.reporter
        if sweep_every is None:
            sweep_every = _GLOBAL.sweep_every
    sanitizer = Sanitizer(
        kernel,
        reporter=reporter,
        sweep_every=sweep_every or 0,
        label=label,
    )
    # repro-lint: disable=zero-perturbation -- the sanctioned attach point:
    # installs the sanitizer on the machine's dedicated observer slot.
    kernel.machine.sanitizer = sanitizer
    if _GLOBAL.active:
        _GLOBAL.sanitizers.append(sanitizer)
    return sanitizer
