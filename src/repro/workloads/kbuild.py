"""The kernel-compile benchmark (§4's "informal Linux benchmark").

"The mix of process creation, file I/O, and computation in the kernel
compile is a good guess at a typical user load."  The workload is a
`make` driver that, per translation unit: forks, execs a compiler image,
reads the source file in pieces interleaved with computation (cold reads
sleep on the simulated disk — giving the idle task its windows), runs
working-set computation phases, grows its heap for the output, and
exits.

Two profiles matching the two §5/§9 regimes:

* :data:`TLB_STORM` — a ~1.6 MB compiler heap, far beyond TLB reach, the
  regime behind the paper's 219M-miss compiles.  Used by the BAT and
  fast-handler experiments.
* :data:`CACHE_RESIDENT` — a hot set that fits in L1, the regime where
  §9's idle-task page clearing effects (cache pollution vs pre-cleared
  pages) dominate.

The real compile is ~10 minutes of 1999 hardware; we run a scaled trace
(see ``KBUILD_TRACE_SCALE`` in :mod:`repro.params`) and report both raw
simulated numbers and the shape metrics the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.params import KBUILD_TRACE_SCALE, PAGE_SIZE
from repro.sim.simulator import Simulator
from repro.sim.trace import WorkingSetTrace

#: Compiler image text size (cc1 was a fat binary for the era).
CC1_TEXT_PAGES = 48


@dataclass(frozen=True)
class KbuildProfile:
    """Shape of one compile workload."""

    name: str
    #: Heap pages the compiler touches.
    data_pages: int
    #: Working-set visits per translation unit.
    visits: int
    #: Fraction of the heap in the hot working set (1.0 = uniform).
    hot_fraction: float
    #: Cache lines touched per visit.
    lines_per_visit: int
    #: Bytes of source (and headers) read per unit.  Cold page reads are
    #: disk waits — the idle task's windows — interleaved with the work
    #: phases, so this sets how I/O-bound the compile is.
    source_bytes: int = 24 * 1024

    @property
    def source_pages(self) -> int:
        return (self.source_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    @property
    def phases(self) -> int:
        return self.source_pages


#: ~1.6 MB heap, uniform access: a TLB miss every few visits, like the
#: paper's 219M-miss compiles (§5.1's regime).
TLB_STORM = KbuildProfile(
    name="tlb-storm",
    data_pages=400,
    visits=6000,
    hot_fraction=1.0,
    lines_per_visit=6,
)

#: An L2-resident working set with plenty of interleaved disk I/O: §9's
#: regime, where idle-task page clearing through the cache destroys the
#: working set that would otherwise stay resident.
CACHE_RESIDENT = KbuildProfile(
    name="cache-resident",
    data_pages=200,
    visits=4000,
    hot_fraction=0.8,
    lines_per_visit=16,
    source_bytes=96 * 1024,
)


@dataclass
class KbuildResult:
    """One kernel-compile run's measurements."""

    label: str
    machine: str
    units: int
    profile: str
    wall_cycles: int
    wall_ms: float
    tlb_misses: int
    htab_misses: int
    dcache_misses: int
    icache_misses: int
    kernel_tlb_entries_high_water: int
    pages_precleared: int
    precleared_used: int
    counters: Dict[str, int] = field(default_factory=dict)
    breakdown: Dict[str, int] = field(default_factory=dict)

    #: The fixed trace-scale factor (identical for every configuration
    #: being compared; see DESIGN.md §1 and params.KBUILD_TRACE_SCALE).
    trace_scale: int = KBUILD_TRACE_SCALE

    @property
    def full_scale_tlb_misses(self) -> int:
        """TLB misses rescaled to the paper's full-compile magnitude."""
        return self.tlb_misses * self.trace_scale

    @property
    def full_scale_wall_minutes(self) -> float:
        """Wall clock rescaled to the paper's full-compile magnitude."""
        return self.wall_ms * self.trace_scale / 60000.0


def _compile_unit_body(child, unit: int, profile: KbuildProfile, seed: int):
    """The compiler process for one translation unit."""

    def body(task):
        yield (
            "exec",
            "cc1",
            {
                "text_pages": CC1_TEXT_PAGES,
                "data_pages": profile.data_pages + 8,
                "stack_pages": 8,
            },
        )
        trace = WorkingSetTrace(
            code_base=0x01000000,
            code_pages=min(24, CC1_TEXT_PAGES),
            data_base=0x10000000 + 2 * PAGE_SIZE,
            data_pages=profile.data_pages,
            hot_fraction=profile.hot_fraction,
            write_fraction=0.35,
            drift=0.02,
            lines_per_visit=profile.lines_per_visit,
            seed=seed,
        )
        buf = 0x10000000
        per_phase = max(profile.visits // profile.phases, 1)
        # Interleave source reading (cold: a disk wait and an idle-task
        # window) with computation phases, the way cpp/cc1 pipelines do.
        for phase in range(profile.phases):
            offset = phase * PAGE_SIZE
            if offset < profile.source_bytes:
                yield ("read_file", f"src{unit}.c", offset, PAGE_SIZE, buf)
            yield ("work", trace.visit_list(per_phase))
        # Emit the object file: grow the heap and fill it (ends with the
        # write-behind sync that gives one more idle window).
        yield ("brk", 6)
        emit_base = 0x10000000 + (profile.data_pages + 8) * PAGE_SIZE
        for page in range(6):
            yield ("touch", emit_base + page * PAGE_SIZE, 128, True)
        yield ("sleep", 40000)
        yield ("exit", 0)

    return body(child)


def kernel_compile(
    sim: Simulator,
    units: int = 6,
    profile: KbuildProfile = TLB_STORM,
    label: str = "",
) -> KbuildResult:
    """Run a scaled kernel compile; returns shape metrics."""
    kernel = sim.kernel
    executive = sim.executive
    for unit in range(units):
        kernel.fs.create(f"src{unit}.c", profile.source_bytes)
    kernel.create_image("bin:cc1", CC1_TEXT_PAGES)

    high_water = [0]

    def make_factory(task):
        def body(t):
            yield ("mark", "kbuild_start")
            for unit in range(units):
                child = yield (
                    "fork",
                    lambda c, unit=unit: _compile_unit_body(
                        c, unit, profile, seed=unit
                    ),
                )
                yield ("waitpid", child)
                # make stats the next few files (a short disk wait).
                yield ("sleep", 20000)
                # Sample the kernel TLB footprint between units.
                footprint = (
                    sim.machine.itlb.kernel_entries()
                    + sim.machine.dtlb.kernel_entries()
                )
                high_water[0] = max(high_water[0], footprint)
            yield ("mark", "kbuild_end")

        return body(task)

    executive.spawn("make", make_factory, text_pages=12, data_pages=12)
    start_counters = sim.counters()
    sim.run()
    delta = executive.mark_deltas("kbuild_start", "kbuild_end")[0]
    counters = sim.machine.monitor.delta(start_counters)
    tlb = counters.get("itlb_miss", 0) + counters.get("dtlb_miss", 0)
    return KbuildResult(
        label=label or profile.name,
        machine=sim.spec.name,
        units=units,
        profile=profile.name,
        wall_cycles=delta,
        wall_ms=sim.cycles_to_us(delta) / 1000.0,
        tlb_misses=tlb,
        htab_misses=counters.get("htab_miss", 0),
        dcache_misses=counters.get("dcache_miss", 0),
        icache_misses=counters.get("icache_miss", 0),
        kernel_tlb_entries_high_water=high_water[0],
        pages_precleared=counters.get("pages_precleared", 0),
        precleared_used=counters.get("precleared_page_used", 0),
        counters=counters,
        breakdown=sim.breakdown(),
    )
