"""Open-loop request-serving workload — the server-scale scenario.

The paper's lazy-flush/VSID-bump/zombie-reclaim tradeoffs (§7) only
bite when many short-lived mm contexts churn VSIDs and zombie entries
saturate the hash table.  This workload builds that pressure: a
deterministic seeded arrival schedule (exponential / uniform / burst
interarrival) drives a service graph of worker tasks over the SMP
executive, and every request's life-cycle is timed open-loop.

Open-loop means the latency clock for request *i* starts at its
*scheduled* arrival time, computed before the run from the seed alone —
never at the moment the saturated system got around to issuing it.
Closed-loop generators silently stretch their schedule when the system
falls behind (coordinated omission) and report fantasy tails; here a
late dispatcher runs straight through past deadlines and the queueing
delay lands in the percentiles where it belongs.

Topology: each CPU hosts one dispatcher task and a small pool of
persistent worker tasks, all pinned (task placement is fixed at spawn).
The dispatcher sleeps to each arrival deadline and appends the request
to its CPU's queue; workers pull requests and run the per-request
recipe — ``exec`` a fresh image (a VSID bump under the lazy kernel:
one short-lived mm context per request), map and touch a scratch
region, compute, unmap.  Keeping every task of a CPU's ecosystem on
that CPU means all of a request's timestamps are read off one cycle
ledger, so latencies are coherent even though SMP clocks drift.

All timing state lives in plain Python records mutated identically on
traced and untraced runs; tracer publication is guarded and read-only,
so the zero-perturbation contract holds for service runs too.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.analytics import (
    SLO_PERMILLES,
    pearson,
    percentile_permille,
    permille_label,
)
from repro.params import PAGE_SIZE
from repro.sim.simulator import Simulator

#: Interarrival schedule kinds the generator knows how to draw.
SCHEDULE_KINDS = ("exponential", "uniform", "burst")

#: Bookkeeping cycles the server runtime charges per request dispatch
#: (queue pop, context hand-off) — the ``service`` ledger category.
DISPATCH_BOOKKEEPING_CYCLES = 180

#: Bookkeeping cycles charged when a request is accepted onto a queue.
ARRIVAL_BOOKKEEPING_CYCLES = 60

#: How long an idle worker sleeps before re-polling its queue.
WORKER_POLL_CYCLES = 2_000

#: Raw ledger categories that make up a request's MMU bill.
_MMU_RAW_CATEGORIES = ("tlb_reload", "scavenge", "flush", "shootdown")

#: Base EA of a task's data segment (same convention the other
#: workloads use).  Each request touches its image's data pages —
#: session state that stays mapped until the *next* request's exec
#: retires the VSID, so every strategy accrues zombie entries under
#: the lazy kernel, not just the ones that skip the munmap flush.
_DATA_BASE = 0x10000000


def arrival_gaps(
    kind: str, rng: random.Random, count: int, mean_gap: float
) -> List[int]:
    """``count`` interarrival gaps in cycles, averaging ``mean_gap``.

    Deterministic given the RNG state; every kind targets the same mean
    so offered load is comparable across schedule shapes.  ``burst``
    alternates tight trains of arrivals with long silences (the same
    mean, a much nastier tail).
    """
    if kind not in SCHEDULE_KINDS:
        raise ValueError(
            f"unknown schedule kind {kind!r}; expected one of "
            f"{SCHEDULE_KINDS}"
        )
    gaps: List[int] = []
    if kind == "exponential":
        for _ in range(count):
            gaps.append(max(1, int(rng.expovariate(1.0 / mean_gap))))
    elif kind == "uniform":
        for _ in range(count):
            gaps.append(max(1, int(rng.uniform(0.5 * mean_gap,
                                               1.5 * mean_gap))))
    else:  # burst
        burst_len = 4
        # A train of near-back-to-back arrivals, then one long gap that
        # restores the mean: gap pattern (g/8, g/8, g/8, g*(4 - 3/8)).
        short = max(1, int(mean_gap / 8))
        long_gap = max(1, int(mean_gap * burst_len - short * (burst_len - 1)))
        for index in range(count):
            if index % burst_len == burst_len - 1:
                jitter = rng.uniform(0.9, 1.1)
                gaps.append(max(1, int(long_gap * jitter)))
            else:
                gaps.append(short)
    return gaps


def arrival_schedule(
    kind: str, seed: int, count: int, mean_gap: float, n_cpus: int
) -> List[List[int]]:
    """Per-CPU lists of *relative* arrival cycles for ``count`` requests.

    One global seeded stream is drawn first and dealt round-robin to
    CPUs, so the same (kind, seed, count, mean_gap) always produces the
    same schedule regardless of how the run is executed — the byte-
    identity the determinism tests pin down.
    """
    rng = random.Random(seed)
    gaps = arrival_gaps(kind, rng, count, mean_gap)
    deadlines: List[int] = []
    now = 0
    for gap in gaps:
        now += gap
        deadlines.append(now)
    per_cpu: List[List[int]] = [[] for _ in range(n_cpus)]
    for index, deadline in enumerate(deadlines):
        per_cpu[index % n_cpus].append(deadline)
    return per_cpu


class RequestRecord:
    """One request's life-cycle timestamps, all on its home-CPU clock."""

    __slots__ = (
        "rid", "cpu", "scheduled", "arrived", "dispatched", "completed",
        "mmu_cycles",
    )

    def __init__(self, rid: int, cpu: int, scheduled: int) -> None:
        self.rid = rid
        self.cpu = cpu
        self.scheduled = scheduled
        self.arrived = 0
        self.dispatched = 0
        self.completed = 0
        self.mmu_cycles = 0

    @property
    def latency(self) -> int:
        """Open-loop latency: completion minus *scheduled* arrival."""
        return self.completed - self.scheduled

    @property
    def queue_wait(self) -> int:
        return self.dispatched - self.arrived

    @property
    def service_cycles(self) -> int:
        return self.completed - self.dispatched


class ServiceRun:
    """One open-loop service run over a booted simulator.

    Construct, :meth:`install` the dispatcher/worker tasks, ``sim.run()``,
    then read :meth:`summary`.
    """

    def __init__(
        self,
        sim: Simulator,
        requests: int,
        mean_gap: float,
        schedule: str = "exponential",
        seed: int = 20,
        workers_per_cpu: int = 3,
        region_pages: int = 4,
        touch_lines: int = 8,
        compute_cycles: int = 6_000,
    ) -> None:
        self.sim = sim
        self.requests = requests
        self.mean_gap = mean_gap
        self.schedule = schedule
        self.seed = seed
        self.workers_per_cpu = workers_per_cpu
        self.region_pages = region_pages
        self.touch_lines = touch_lines
        self.compute_cycles = compute_cycles
        n_cpus = sim.machine.n_cpus
        self.schedules = arrival_schedule(
            schedule, seed, requests, mean_gap, n_cpus
        )
        #: Per-CPU FIFO of pending RequestRecords (plain lists keep the
        #: measurement path free of set iteration).
        self.pending: List[List[RequestRecord]] = [[] for _ in range(n_cpus)]
        self.arrivals_done: List[bool] = [False] * n_cpus
        self.records: List[RequestRecord] = []
        #: Per-CPU (cycle, depth) samples taken at every arrival and
        #: dispatch — the queue-depth timeline.
        self.depth_samples: List[List[Tuple[int, int]]] = [
            [] for _ in range(n_cpus)
        ]
        #: (queue depth, zombie entries) pairs snapshotted at every
        #: arrival — end-of-run stats miss the pressure entirely (the
        #: final idle window reclaims the backlog), so the zombie
        #: trajectory is sampled while the load is on.
        self.pressure_samples: List[Tuple[int, int]] = []

    # -- task bodies ---------------------------------------------------------

    def _dispatcher_body(self) -> Callable:
        run = self
        kernel = self.sim.kernel

        def gen(task):
            cpu = task.cpu
            machine = kernel.machine
            base = machine.clock.total
            deadlines = run.schedules[cpu]
            rid_base = cpu * run.requests  # per-CPU rid namespace
            for index, deadline in enumerate(deadlines):
                scheduled = base + deadline
                yield ("sleep_until", scheduled)
                record = RequestRecord(rid_base + index, cpu, scheduled)
                record.arrived = machine.clock.total
                queue = run.pending[cpu]
                queue.append(record)
                machine.clock.add(ARRIVAL_BOOKKEEPING_CYCLES, "service")
                run.depth_samples[cpu].append(
                    (machine.clock.total, len(queue))
                )
                _live, zombie = kernel.htab_zombie_stats()
                run.pressure_samples.append((len(queue), zombie))
                tracer = machine.tracer
                if tracer is not None:
                    tracer.instant(
                        "req-arrival", "service",
                        {"rid": record.rid, "scheduled": scheduled,
                         "depth": len(queue)},
                    )
                    tracer.counter(
                        "queue-depth", {"pending": len(queue)}
                    )
            run.arrivals_done[cpu] = True
            yield ("exit", 0)

        return gen

    def _worker_body(self) -> Callable:
        run = self
        kernel = self.sim.kernel

        def gen(task):
            cpu = task.cpu
            machine = kernel.machine
            clock = machine.clock
            region_bytes = run.region_pages * PAGE_SIZE
            while True:
                queue = run.pending[cpu]
                if not queue:
                    if run.arrivals_done[cpu]:
                        break
                    yield ("sleep", WORKER_POLL_CYCLES)
                    continue
                record = queue.pop(0)
                clock.add(DISPATCH_BOOKKEEPING_CYCLES, "service")
                record.dispatched = clock.total
                run.depth_samples[cpu].append((clock.total, len(queue)))
                tracer = machine.tracer
                if tracer is not None:
                    tracer.instant(
                        "req-dispatch", "service",
                        {"rid": record.rid, "wait": record.queue_wait},
                    )
                    tracer.complete(
                        "req-queue", "service", record.queue_wait,
                        {"rid": record.rid},
                    )
                mmu_before = _mmu_cycles(clock.breakdown())
                # The request recipe: a fresh mm context (exec bumps the
                # VSIDs under the lazy kernel — one short-lived context
                # per request), a mapped scratch region touched and torn
                # down (flush/shootdown pressure), and some app compute.
                yield ("exec", "svc-req",
                       {"text_pages": 4, "data_pages": 2, "stack_pages": 2})
                # Session state in the fresh image's data segment: these
                # entries outlive the request and zombify at the next
                # exec's VSID bump.
                for page in range(2):
                    yield ("touch", _DATA_BASE + page * PAGE_SIZE,
                           run.touch_lines, True)
                addr = yield ("mmap", region_bytes, None, None)
                for page in range(run.region_pages):
                    yield ("touch", addr + page * PAGE_SIZE,
                           run.touch_lines, True)
                yield ("compute", run.compute_cycles)
                yield ("munmap", addr, region_bytes)
                record.completed = clock.total
                record.mmu_cycles = (
                    _mmu_cycles(clock.breakdown()) - mmu_before
                )
                run.records.append(record)
                tracer = machine.tracer
                if tracer is not None:
                    tracer.complete(
                        "req-run", "service", record.service_cycles,
                        {"rid": record.rid, "mmu": record.mmu_cycles},
                    )
                    tracer.instant(
                        "req-complete", "service",
                        {"rid": record.rid, "latency": record.latency},
                    )
            yield ("exit", 0)

        return gen

    # -- orchestration -------------------------------------------------------

    def install(self) -> None:
        """Spawn one dispatcher and the worker pool per CPU.

        Spawn placement is strict round-robin, so each batch of
        ``n_cpus`` consecutive spawns lands exactly one task per CPU;
        bodies read ``task.cpu`` to find their queue.
        """
        n_cpus = self.sim.machine.n_cpus
        for index in range(n_cpus):
            self.sim.executive.spawn(
                f"svc-dispatch{index}", self._dispatcher_body(),
                text_pages=4, data_pages=2, stack_pages=2,
            )
        for _round in range(self.workers_per_cpu):
            for index in range(n_cpus):
                self.sim.executive.spawn(
                    f"svc-worker{_round}.{index}", self._worker_body(),
                    text_pages=4, data_pages=2, stack_pages=2,
                )

    def run(self, **kwargs) -> None:
        self.install()
        self.sim.run(**kwargs)

    # -- measurement ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """The SLO block: open-loop latency quantiles, throughput,
        queue depth, per-request MMU attribution and zombie pressure."""
        sim = self.sim
        records = self.records
        latencies = sorted(record.latency for record in records)
        waits = sorted(record.queue_wait for record in records)
        services = sorted(record.service_cycles for record in records)
        to_us = sim.spec.cycles_to_us
        slo: Dict[str, object] = {}
        for permille in SLO_PERMILLES:
            label = permille_label(permille)
            slo[f"latency_{label}_us"] = round(
                to_us(percentile_permille(latencies, permille)), 3
            )
        slo["queue_wait_p99_us"] = round(
            to_us(percentile_permille(waits, 990)), 3
        )
        slo["service_p50_us"] = round(
            to_us(percentile_permille(services, 500)), 3
        )
        # Throughput over the span from first scheduled arrival to the
        # last completion, per CPU timeline, aggregated conservatively
        # on the busiest CPU's elapsed time.
        elapsed = 0
        for cpu in range(sim.machine.n_cpus):
            cpu_records = [r for r in records if r.cpu == cpu]
            if not cpu_records:
                continue
            start = min(r.scheduled for r in cpu_records)
            end = max(r.completed for r in cpu_records)
            elapsed = max(elapsed, end - start)
        throughput = 0.0
        if elapsed:
            throughput = len(records) / (to_us(elapsed) / 1e6)
        depths = [depth for samples in self.depth_samples
                  for _cycle, depth in samples]
        live, zombie = sim.kernel.htab_zombie_stats()
        zombies = [z for _depth, z in self.pressure_samples]
        arrival_depths = [depth for depth, _z in self.pressure_samples]
        mmu_total = sum(record.mmu_cycles for record in records)
        offered = 0.0
        if self.mean_gap:
            offered = (
                sim.spec.clock_mhz * 1e6 / self.mean_gap
            )
        return {
            "requests": self.requests,
            "completed": len(records),
            "offered_per_s": round(offered, 3),
            "throughput_per_s": round(throughput, 3),
            "slo": slo,
            "queue_depth_max": max(depths) if depths else 0,
            "queue_depth_mean": (
                round(sum(depths) / len(depths), 6) if depths else 0.0
            ),
            "mmu_cycles_total": mmu_total,
            "mmu_cycles_per_request": (
                round(mmu_total / len(records), 3) if records else 0.0
            ),
            "htab_live": live,
            "htab_zombie": zombie,
            "zombie_share": round(
                zombie / (live + zombie), 6
            ) if live + zombie else 0.0,
            "zombie_peak": max(zombies) if zombies else 0,
            "zombie_mean": (
                round(sum(zombies) / len(zombies), 6) if zombies else 0.0
            ),
            "zombie_queue_correlation": round(
                pearson(arrival_depths, zombies), 6
            ),
        }

    def latencies_us(self) -> List[float]:
        """Per-request open-loop latencies in µs, rid order."""
        to_us = self.sim.spec.cycles_to_us
        ordered = sorted(self.records, key=lambda record: record.rid)
        return [round(to_us(record.latency), 3) for record in ordered]

    def queue_depth_timeline(self, points: int = 48) -> List[int]:
        """A merged, downsampled queue-depth series (depth per sample)."""
        merged: List[Tuple[int, int]] = []
        for samples in self.depth_samples:
            merged.extend(samples)
        merged.sort(key=lambda pair: pair[0])
        depths = [depth for _cycle, depth in merged]
        if len(depths) <= points:
            return depths
        last = len(depths) - 1
        return [
            depths[round(index * last / (points - 1))]
            for index in range(points)
        ]


def _mmu_cycles(breakdown: Dict[str, int]) -> int:
    """The MMU bill in a ledger breakdown: reload + flush + shootdown."""
    total = 0
    for raw in _MMU_RAW_CATEGORIES:
        total += breakdown.get(raw, 0)
    return total


def service_run(
    sim: Simulator,
    requests: int,
    offered_per_s: float,
    schedule: str = "exponential",
    seed: int = 20,
    workers_per_cpu: int = 3,
    max_dispatches: Optional[int] = None,
) -> ServiceRun:
    """Boot-to-summary convenience: run an open-loop load and return it.

    ``offered_per_s`` is the offered arrival rate in requests per
    simulated second; the mean interarrival gap follows from the
    machine's clock rate.
    """
    mean_gap = sim.spec.clock_mhz * 1e6 / offered_per_s
    run = ServiceRun(
        sim, requests, mean_gap, schedule=schedule, seed=seed,
        workers_per_cpu=workers_per_cpu,
    )
    kwargs = {}
    if max_dispatches is not None:
        kwargs["max_dispatches"] = max_dispatches
    run.run(**kwargs)
    return run
