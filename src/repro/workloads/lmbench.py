"""LmBench benchmark points (McVoy, USENIX '96), reimplemented against
the simulated kernel.

Each point exercises the same kernel paths the real tool does:

* ``null_syscall`` — lat_syscall: getpid in a loop.
* ``context_switch`` — lat_ctx: a ring of processes passing a pipe token,
  optionally touching a per-process working set each activation.
* ``pipe_latency`` — lat_pipe: two processes ping-ponging one byte.
* ``pipe_bandwidth`` — bw_pipe: one process streaming bytes to another.
* ``file_reread`` — bw_file_rd: re-reading a page-cache-warm file.
* ``mmap_latency`` — lat_mmap: mapping and unmapping a file region
  (the §7 headline: 3240 µs -> 41 µs).
* ``process_start`` — lat_proc: fork + exec + exit of a small program.

Every function takes a booted :class:`~repro.sim.simulator.Simulator`
and returns paper units (µs or MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.params import PAGE_SIZE
from repro.sim.simulator import Simulator

#: Default byte count streamed by the bandwidth points.
BW_TOTAL_BYTES = 2 * 1024 * 1024
#: lat_mmap region size (fixed across all configurations).
MMAP_REGION_BYTES = 4 * 1024 * 1024
#: bw_file_rd file size.
FILE_REREAD_BYTES = 4 * 1024 * 1024
#: read() chunk used by the file benchmarks.
FILE_CHUNK = 64 * 1024


@dataclass
class LmbenchResult:
    """One machine/config's LmBench summary (a column of Tables 1–3)."""

    machine: str
    label: str
    null_syscall_us: Optional[float] = None
    ctxsw_us: Optional[float] = None
    ctxsw8_us: Optional[float] = None
    pipe_latency_us: Optional[float] = None
    pipe_bw_mb_s: Optional[float] = None
    file_reread_mb_s: Optional[float] = None
    mmap_latency_us: Optional[float] = None
    process_start_ms: Optional[float] = None
    counters: Dict[str, int] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# lat_syscall
# ---------------------------------------------------------------------------


def null_syscall(sim: Simulator, iterations: int = 200) -> float:
    """Per-call getpid latency in µs."""
    executive = sim.executive

    def factory(task):
        def body(t):
            for _ in range(20):
                yield ("getpid",)
            yield ("mark", "null_start")
            for _ in range(iterations):
                yield ("getpid",)
            yield ("mark", "null_end")

        return body(task)

    executive.spawn("lat_syscall", factory)
    sim.run()
    delta = executive.mark_deltas("null_start", "null_end")[0]
    return sim.cycles_to_us(delta / iterations)


# ---------------------------------------------------------------------------
# lat_ctx
# ---------------------------------------------------------------------------


def context_switch(
    sim: Simulator,
    nproc: int = 2,
    iterations: int = 40,
    working_set_kb: int = 0,
    warmup_laps: int = 4,
) -> float:
    """Per-switch latency (µs) for a token ring of ``nproc`` processes.

    Like lat_ctx, the pipe read/write overhead is measured separately (a
    single process passing the token to itself, no switches) and
    subtracted, so the result is the cost of the switch itself.
    """
    kernel = sim.kernel
    executive = sim.executive
    ws_pages = (working_set_kb * 1024) // PAGE_SIZE
    pipes = [kernel.pipes.create().ident for _ in range(nproc)]
    self_pipe = kernel.pipes.create().ident
    data_pages = max(8, ws_pages + 2)

    def overhead_factory(task):
        def body(t):
            buf = 0x10000000
            for _ in range(5):
                yield ("pipe_write", self_pipe, 1, buf)
                yield ("pipe_read", self_pipe, 1, buf)
            yield ("mark", "ovh_start")
            for _ in range(iterations):
                yield ("pipe_write", self_pipe, 1, buf)
                yield ("pipe_read", self_pipe, 1, buf)
                for page in range(ws_pages):
                    yield ("touch", 0x10002000 + page * PAGE_SIZE, 128, False)
            yield ("mark", "ovh_end")

        return body(task)

    laps = warmup_laps + iterations

    def member_factory(index):
        def factory(task):
            buf = 0x10000000

            def body(t):
                read_pipe = pipes[index]
                write_pipe = pipes[(index + 1) % nproc]
                if index == 0:
                    # Inject the token, run `laps` circuits, then absorb
                    # the final token so every member's counts balance.
                    yield ("pipe_write", write_pipe, 1, buf)
                    for lap in range(laps):
                        if lap == warmup_laps:
                            yield ("mark", "ctx_start")
                        yield ("pipe_read", read_pipe, 1, buf)
                        for page in range(ws_pages):
                            yield ("touch", 0x10002000 + page * PAGE_SIZE,
                                   128, False)
                        yield ("pipe_write", write_pipe, 1, buf)
                    yield ("mark", "ctx_end")
                    yield ("pipe_read", read_pipe, 1, buf)
                else:
                    for _lap in range(laps + 1):
                        yield ("pipe_read", read_pipe, 1, buf)
                        for page in range(ws_pages):
                            yield ("touch", 0x10002000 + page * PAGE_SIZE,
                                   128, False)
                        yield ("pipe_write", write_pipe, 1, buf)

            return body(task)

        return factory

    executive.spawn("ctx_overhead", overhead_factory, data_pages=data_pages)
    sim.run()
    for index in range(nproc):
        executive.spawn(
            f"ring{index}", member_factory(index), data_pages=data_pages
        )
    sim.run()
    overhead = executive.mark_deltas("ovh_start", "ovh_end")[0] / iterations
    delta = executive.mark_deltas("ctx_start", "ctx_end")[0]
    per_hop = delta / (iterations * nproc)
    return sim.cycles_to_us(max(per_hop - overhead, 0.0))


# ---------------------------------------------------------------------------
# lat_pipe
# ---------------------------------------------------------------------------


def pipe_latency(sim: Simulator, iterations: int = 50) -> float:
    """One-way pipe latency in µs (round trip over two)."""
    kernel = sim.kernel
    executive = sim.executive
    ping = kernel.pipes.create().ident
    pong = kernel.pipes.create().ident

    def client_factory(task):
        def body(t):
            buf = 0x10000000
            for _ in range(5):  # warmup
                yield ("pipe_write", ping, 1, buf)
                yield ("pipe_read", pong, 1, buf)
            yield ("mark", "pipe_start")
            for _ in range(iterations):
                yield ("pipe_write", ping, 1, buf)
                yield ("pipe_read", pong, 1, buf)
            yield ("mark", "pipe_end")
            yield ("pipe_write", ping, 1, buf)  # release the server

        return body(task)

    def server_factory(task):
        def body(t):
            buf = 0x10000000
            for _ in range(5 + iterations + 1):
                yield ("pipe_read", ping, 1, buf)
                yield ("pipe_write", pong, 1, buf)

        return body(task)

    executive.spawn("pipe_client", client_factory)
    executive.spawn("pipe_server", server_factory)
    sim.run()
    delta = executive.mark_deltas("pipe_start", "pipe_end")[0]
    return sim.cycles_to_us(delta / (2 * iterations))


# ---------------------------------------------------------------------------
# bw_pipe
# ---------------------------------------------------------------------------


def pipe_bandwidth(sim: Simulator, total_bytes: int = BW_TOTAL_BYTES) -> float:
    """Pipe streaming bandwidth in MB/s."""
    kernel = sim.kernel
    executive = sim.executive
    pipe = kernel.pipes.create().ident
    chunk = PAGE_SIZE

    def writer_factory(task):
        def body(t):
            buf = 0x10000000
            sent = 0
            yield ("mark", "bw_start")
            while sent < total_bytes:
                written = yield ("pipe_write", pipe, chunk, buf)
                sent += written

        return body(task)

    def reader_factory(task):
        def body(t):
            buf = 0x10000000
            received = 0
            while received < total_bytes:
                count = yield ("pipe_read", pipe, chunk, buf)
                received += count
            yield ("mark", "bw_end")

        return body(task)

    executive.spawn("bw_writer", writer_factory)
    executive.spawn("bw_reader", reader_factory)
    sim.run()
    delta = executive.mark_deltas("bw_start", "bw_end")[0]
    return sim.mb_per_s(total_bytes, delta)


# ---------------------------------------------------------------------------
# bw_file_rd
# ---------------------------------------------------------------------------


def file_reread(
    sim: Simulator, file_bytes: int = FILE_REREAD_BYTES
) -> float:
    """Warm-cache file read bandwidth in MB/s."""
    kernel = sim.kernel
    executive = sim.executive
    kernel.fs.create("reread.dat", file_bytes)

    def factory(task):
        from repro.sim.trace import PageVisit

        # bw_file_rd reads *and sums* each chunk; the sum pass is real
        # user work over the buffer.
        def sum_pass(buf):
            return [
                PageVisit(ea=buf + page * PAGE_SIZE, lines=128)
                for page in range(FILE_CHUNK // PAGE_SIZE)
            ]

        def body(t):
            buf = 0x10000000
            # Pass 1: populate the page cache (disk waits -> idle time).
            offset = 0
            while offset < file_bytes:
                count = yield ("read_file", "reread.dat", offset, FILE_CHUNK, buf)
                yield ("work", sum_pass(buf))
                offset += count
            # Pass 2: the measured reread.
            yield ("mark", "reread_start")
            offset = 0
            while offset < file_bytes:
                count = yield ("read_file", "reread.dat", offset, FILE_CHUNK, buf)
                yield ("work", sum_pass(buf))
                offset += count
            yield ("mark", "reread_end")

        return body(task)

    executive.spawn("bw_file", factory, data_pages=FILE_CHUNK // PAGE_SIZE + 2)
    sim.run()
    delta = executive.mark_deltas("reread_start", "reread_end")[0]
    return sim.mb_per_s(file_bytes, delta)


# ---------------------------------------------------------------------------
# lat_mmap
# ---------------------------------------------------------------------------


def mmap_latency(
    sim: Simulator,
    region_bytes: int = MMAP_REGION_BYTES,
    iterations: int = 8,
) -> float:
    """mmap+munmap latency (µs per pair) for a file region."""
    kernel = sim.kernel
    executive = sim.executive
    kernel.fs.create("map.dat", region_bytes)

    def factory(task):
        def body(t):
            # Warmup pair.
            addr = yield ("mmap", region_bytes, "map.dat", None)
            yield ("munmap", addr, region_bytes)
            yield ("mark", "mmap_start")
            for _ in range(iterations):
                addr = yield ("mmap", region_bytes, "map.dat", None)
                yield ("munmap", addr, region_bytes)
            yield ("mark", "mmap_end")

        return body(task)

    executive.spawn("lat_mmap", factory)
    sim.run()
    delta = executive.mark_deltas("mmap_start", "mmap_end")[0]
    return sim.cycles_to_us(delta / iterations)


# ---------------------------------------------------------------------------
# lat_proc
# ---------------------------------------------------------------------------


def process_start(sim: Simulator, iterations: int = 5) -> float:
    """fork+exec+exit latency in **milliseconds** per process."""
    executive = sim.executive

    def child_body_factory(child):
        def body(t):
            yield ("exec", "hello", {"text_pages": 8, "data_pages": 10})
            # Dynamic-link startup: ld.so walks the library image and
            # writes relocations — the bulk of real hello-world latency.
            lib_base = 0x40000000
            for page in range(24):
                yield ("itouch", lib_base + page * PAGE_SIZE, 24)
            for page in range(8):
                yield ("touch", 0x10000000 + page * PAGE_SIZE, 48, True)
            yield ("compute", 60000)  # symbol resolution
            # The program itself runs briefly.
            for page in range(4):
                yield ("itouch", 0x01000000 + page * PAGE_SIZE, 16)
            for page in range(3):
                yield ("touch", 0x70000000 - (page + 1) * PAGE_SIZE, 16, True)
            yield ("exit", 0)

        return body(t=child)

    def parent_factory(task):
        def body(t):
            # Warmup.
            child = yield ("fork", child_body_factory)
            yield ("waitpid", child)
            yield ("mark", "proc_start")
            for _ in range(iterations):
                child = yield ("fork", child_body_factory)
                yield ("waitpid", child)
            yield ("mark", "proc_end")

        return body(task)

    executive.spawn("lat_proc", parent_factory, data_pages=16)
    sim.run()
    delta = executive.mark_deltas("proc_start", "proc_end")[0]
    return sim.cycles_to_us(delta / iterations) / 1000.0


# ---------------------------------------------------------------------------
# the full suite
# ---------------------------------------------------------------------------

#: Points and the fresh-simulator factory each needs (every point boots
#: its own system so state cannot leak between points, matching how
#: LmBench runs each test as its own process tree).
SUITE_POINTS = (
    "null_syscall",
    "ctxsw",
    "pipe_latency",
    "pipe_bw",
    "file_reread",
    "mmap_latency",
    "process_start",
)


def lmbench_suite(
    make_sim,
    label: str,
    points=SUITE_POINTS,
    ctxsw8: bool = False,
) -> LmbenchResult:
    """Run the requested points, each on a freshly booted simulator.

    ``make_sim`` is a zero-argument callable returning a new
    :class:`Simulator`; ``label`` names the configuration (a table
    column).
    """
    probe = make_sim()
    result = LmbenchResult(machine=probe.spec.name, label=label)
    if "null_syscall" in points:
        result.null_syscall_us = null_syscall(make_sim())
    if "ctxsw" in points:
        result.ctxsw_us = context_switch(make_sim(), nproc=2)
    if ctxsw8:
        result.ctxsw8_us = context_switch(
            make_sim(), nproc=8, iterations=12, working_set_kb=16
        )
    if "pipe_latency" in points:
        result.pipe_latency_us = pipe_latency(make_sim())
    if "pipe_bw" in points:
        result.pipe_bw_mb_s = pipe_bandwidth(make_sim())
    if "file_reread" in points:
        result.file_reread_mb_s = file_reread(make_sim())
    if "mmap_latency" in points:
        result.mmap_latency_us = mmap_latency(make_sim())
    if "process_start" in points:
        sim = make_sim()
        result.process_start_ms = process_start(sim)
        result.counters = sim.counters()
    return result
