"""The paper's workloads: LmBench points, the kernel compile, and mixes."""

from repro.workloads.lmbench import (
    LmbenchResult,
    context_switch,
    file_reread,
    lmbench_suite,
    mmap_latency,
    null_syscall,
    pipe_bandwidth,
    pipe_latency,
    process_start,
)
from repro.workloads.kbuild import KbuildResult, kernel_compile
from repro.workloads.mixes import MixResult, multiprogram_mix

__all__ = [
    "KbuildResult",
    "LmbenchResult",
    "MixResult",
    "context_switch",
    "file_reread",
    "kernel_compile",
    "lmbench_suite",
    "mmap_latency",
    "multiprogram_mix",
    "null_syscall",
    "pipe_bandwidth",
    "pipe_latency",
    "process_start",
]
