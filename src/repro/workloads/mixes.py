"""Multiprogramming mixes for hash-table and zombie studies (§5.2, §7).

The mix models "the typical load on a multiuser system": several
processes in separate memory contexts, each with its own working set,
periodically remapping memory (exec churn and mmap/munmap) — exactly the
behaviour that litters the hash table with entries and, with lazy VSID
flushing, with *zombie* entries the idle task reclaims.

Between rounds the processes sleep briefly (users think, disks seek),
which is what gives the idle task its window.  A sampler process takes
steady-state measurements while the mix is still running, because the
paper's numbers (occupancy 600–700 vs 1400–2200 of 16384; evict ratio
>90% vs ~30%; hit rate 85% vs 98%) are mid-run, not post-mortem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.params import PAGE_SIZE
from repro.perf.histogram import Histogram, occupancy_histogram
from repro.sim.simulator import Simulator
from repro.sim.trace import WorkingSetTrace


@dataclass
class MixSample:
    """One steady-state snapshot taken by the sampler process."""

    cycle: int
    valid_entries: int
    live_entries: int
    zombie_entries: int
    evict_ratio: float
    htab_hit_rate: float


@dataclass
class MixResult:
    """Hash-table health during and after a multiprogramming mix."""

    label: str
    machine: str
    wall_cycles: int
    #: Steady-state samples taken mid-run.
    samples: List[MixSample]
    #: Mean of the mid-run samples (the paper-comparable numbers).
    valid_entries: float
    live_entries: float
    zombie_entries: float
    evict_ratio: float
    htab_hit_rate: float
    occupancy: float
    zombies_reclaimed: int
    occupancy_histogram: Histogram = None
    counters: Dict[str, int] = field(default_factory=dict)


def _worker_body(task, index: int, rounds: int, churn_every: int,
                 think_cycles: int, ws_pages: int, visits: int):
    """One mix worker: compute, remap, think."""

    def body(t):
        trace = WorkingSetTrace(
            code_base=0x01000000,
            code_pages=12,
            data_base=0x10000000,
            data_pages=ws_pages,
            hot_fraction=0.4,
            seed=1000 + index,
        )
        for round_index in range(rounds):
            yield ("work", trace.visit_list(visits))
            if churn_every and round_index % churn_every == churn_every - 1:
                if round_index % (2 * churn_every) == churn_every - 1:
                    # Remap a scratch region (a §7-sized range flush).
                    addr = yield ("mmap", 64 * PAGE_SIZE, None, None)
                    for page in range(0, 64, 2):
                        yield ("touch", addr + page * PAGE_SIZE, 8, True)
                    yield ("munmap", addr, 64 * PAGE_SIZE)
                else:
                    # Exec churn: the process replaces itself — its old
                    # context becomes zombie VSIDs under lazy flushing.
                    yield (
                        "exec",
                        f"worker{index}",
                        {"text_pages": 12, "data_pages": ws_pages + 2},
                    )
            if think_cycles:
                yield ("sleep", think_cycles)
            else:
                yield ("yield",)
        yield ("exit", 0)

    return body(t=task)


def multiprogram_mix(
    sim: Simulator,
    nproc: int = 8,
    rounds: int = 96,
    churn_every: int = 8,
    think_cycles: int = 40000,
    ws_pages: int = 80,
    visits: int = 150,
    samples: int = 8,
    label: str = "",
) -> MixResult:
    """Run the mix and report hash-table health metrics."""
    executive = sim.executive
    machine = sim.machine
    kernel = sim.kernel
    all_samples: List[MixSample] = []

    # Windowed ratio state: the paper's evict/hit ratios are steady-state
    # rates, so each sample reports the rate since the previous sample.
    prev = {"evicts": 0, "reloads": 0, "hits": 0, "searches": 0}

    def take_sample() -> None:
        live, zombie = kernel.htab_zombie_stats()
        htab = machine.htab
        monitor = machine.monitor
        d_evicts = htab.evicts - prev["evicts"]
        d_reloads = htab.reloads - prev["reloads"]
        d_hits = monitor.get("htab_hit") - prev["hits"]
        d_searches = monitor.get("htab_search") - prev["searches"]
        prev.update(
            evicts=htab.evicts,
            reloads=htab.reloads,
            hits=monitor.get("htab_hit"),
            searches=monitor.get("htab_search"),
        )
        all_samples.append(
            MixSample(
                cycle=machine.clock.total,
                valid_entries=htab.valid_entries(),
                live_entries=live,
                zombie_entries=zombie,
                evict_ratio=d_evicts / d_reloads if d_reloads else 0.0,
                htab_hit_rate=d_hits / d_searches if d_searches else 0.0,
            )
        )

    def sampler_factory(task):
        def body(t):
            # Sample until only the sampler itself remains, then exit;
            # the reported stats use the last half of the samples (the
            # steady state).
            while len(kernel.tasks) > 1:
                yield ("sleep", max(think_cycles * 8, 100000))
                take_sample()
            yield ("exit", 0)

        return body(task)

    for index in range(nproc):
        executive.spawn(
            f"worker{index}",
            lambda task, index=index: _worker_body(
                task, index, rounds, churn_every, think_cycles, ws_pages,
                visits,
            ),
            text_pages=12,
            data_pages=ws_pages + 2,
        )
    executive.spawn("sampler", sampler_factory, text_pages=2, data_pages=2)
    start = machine.clock.snapshot()
    start_counters = sim.counters()
    sim.run()
    counters = machine.monitor.delta(start_counters)
    if not all_samples:
        take_sample()
    # Steady state: the last half of the samples.
    collected = all_samples[len(all_samples) // 2:][-samples:]

    def mean(attr):
        return sum(getattr(s, attr) for s in collected) / len(collected)

    return MixResult(
        label=label,
        machine=sim.spec.name,
        wall_cycles=machine.clock.since(start),
        samples=collected,
        valid_entries=mean("valid_entries"),
        live_entries=mean("live_entries"),
        zombie_entries=mean("zombie_entries"),
        evict_ratio=mean("evict_ratio"),
        htab_hit_rate=mean("htab_hit_rate"),
        occupancy=mean("valid_entries") / machine.htab.slots,
        zombies_reclaimed=counters.get("zombie_reclaimed", 0),
        occupancy_histogram=occupancy_histogram(machine.htab),
        counters=counters,
    )
