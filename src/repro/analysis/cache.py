"""On-disk result cache for the experiment engine.

A cached :class:`~repro.analysis.spec.ExperimentResult` is keyed by a
fingerprint over everything that can change the numbers: the spec's
identity and full machine/config matrix, the workload parameters, the
seed, and a hash of the package source (``code_version``).  Any code
edit anywhere in ``src/repro`` therefore invalidates every entry —
coarse, but it makes stale hits impossible without tracking the
simulator's real dependency graph.

Layout: one JSON file per entry under the cache root
(``.repro-cache/`` by default, ``REPRO_CACHE_DIR`` overrides), named
``<id>-<fingerprint[:16]>.json``.  Entries are whole, atomic
(write-to-temp + rename) and self-describing, so parallel workers can
populate the cache concurrently without coordination.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
from typing import Dict, Optional

from repro.analysis.spec import ExperimentResult, ExperimentSpec

#: Bump when the entry format changes; old entries are ignored.
#: v2: results carry the observatory's ``derived`` block.
#: v3: array-backed hot core — results are bit-identical to v2, but the
#: rewrite touched every kernel that feeds an entry, so cached v2 runs
#: are retired rather than trusted across the swap.
CACHE_SCHEMA = 3

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_PACKAGE_ROOT = pathlib.Path(__file__).resolve().parent.parent

_code_version_cache: Optional[str] = None


def cache_dir() -> pathlib.Path:
    """The resolved cache root (env override or the cwd default)."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def code_version() -> str:
    """SHA-256 over every ``src/repro`` source file, path-sorted.

    Computed once per process: the package cannot change under a
    running engine, and hashing ~100 files per experiment would cost
    more than some of the experiments themselves.
    """
    global _code_version_cache
    if _code_version_cache is None:
        digest = hashlib.sha256()
        for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            digest.update(path.relative_to(_PACKAGE_ROOT).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        # repro-lint: disable=effect-race -- per-process memo: every worker derives the same digest independently
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def _fingerprint_default(value: object) -> object:
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"unfingerprintable value: {value!r}")


def spec_fingerprint(
    spec: ExperimentSpec, params: Optional[Dict[str, object]] = None
) -> str:
    """Stable hash of (spec identity, variants, params, seed, code)."""
    identity = {
        "id": spec.id,
        "title": spec.title,
        "section": spec.section,
        "seed": spec.seed,
        "variants": [
            {
                "label": variant.label,
                "machine": dataclasses.asdict(variant.machine),
                "config": dataclasses.asdict(variant.config),
            }
            for variant in spec.variants
        ],
        "params": params or {},
        "code_version": code_version(),
    }
    payload = json.dumps(identity, sort_keys=True, default=_fingerprint_default)
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Load/store :class:`ExperimentResult` records by fingerprint."""

    def __init__(self, root: Optional[pathlib.Path] = None):
        self.root = pathlib.Path(root) if root is not None else cache_dir()

    def _path(self, experiment_id: str, fingerprint: str) -> pathlib.Path:
        return self.root / f"{experiment_id}-{fingerprint[:16]}.json"

    def load(
        self, experiment_id: str, fingerprint: str
    ) -> Optional[ExperimentResult]:
        """The cached result, or None on miss/mismatch/corruption."""
        path = self._path(experiment_id, fingerprint)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            entry.get("schema") != CACHE_SCHEMA
            or entry.get("fingerprint") != fingerprint
        ):
            return None
        record = entry.get("result")
        if not isinstance(record, dict):
            return None
        try:
            return ExperimentResult(**record)
        except TypeError:
            return None

    def store(
        self, experiment_id: str, fingerprint: str, result: ExperimentResult
    ) -> pathlib.Path:
        """Persist one result atomically (temp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, fingerprint)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "result": dataclasses.asdict(result),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)
        return path
