"""Parameter sweeps: the paper's tuning instruments, reusable.

§5.2: "We tuned the VSID generation algorithm by making Linux keep a
hash table miss histogram and adjusting the constant until hot-spots
disappeared."  §7 tuned the range-flush cutoff the same way.  This
module packages those sweeps so the tuning process itself is
reproducible, not just its endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.kernel.config import KernelConfig, VsidPolicy
from repro.params import M604_185, MachineSpec, PAGE_SIZE
from repro.perf.histogram import occupancy_histogram
from repro.sim.simulator import Simulator, boot
from repro.workloads.lmbench import mmap_latency


@dataclass
class ScatterPoint:
    """One VSID scatter constant's hash-table health."""

    constant: int
    occupancy: float
    evicts: int
    hot_spot_ratio: float
    entropy: float

    @property
    def is_power_of_two(self) -> bool:
        return self.constant & (self.constant - 1) == 0


def _fill(sim: Simulator, processes: int, pages: int) -> None:
    """Fault pages in many address spaces (mostly shared mappings)."""
    kernel = sim.kernel
    anon = max(pages // 6, 1)
    shared = pages - anon
    kernel.fs.create("sweep.so", shared * PAGE_SIZE, wired=True)
    kernel.fs.prefault("sweep.so")
    for index in range(processes):
        task = kernel.spawn(f"s{index}", text_pages=4, data_pages=anon + 2)
        kernel.switch_to(task)
        for page in range(anon):
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
        lib = kernel.sys_mmap(
            task, shared * PAGE_SIZE, file="sweep.so", writable=False
        )
        for page in range(shared):
            kernel.user_access(task, lib + page * PAGE_SIZE, 1, False)


def sweep_vsid_scatter(
    constants: Iterable[int],
    processes: int = 24,
    pages_per_process: int = 360,
    spec: MachineSpec = M604_185,
) -> List[ScatterPoint]:
    """Measure hash-table health for each scatter constant (§5.2)."""
    points = []
    for constant in constants:
        config = KernelConfig(
            vsid_policy=VsidPolicy.PID_SCATTER,
            vsid_scatter_constant=constant,
            bat_kernel_map=True,
        )
        sim = boot(spec, config)
        _fill(sim, processes, pages_per_process)
        htab = sim.machine.htab
        histogram = occupancy_histogram(htab)
        points.append(
            ScatterPoint(
                constant=constant,
                occupancy=htab.occupancy(),
                evicts=htab.evicts,
                hot_spot_ratio=histogram.hot_spot_ratio(),
                entropy=histogram.entropy_efficiency(),
            )
        )
    return points


@dataclass
class CutoffPoint:
    """One range-flush cutoff's mmap latency."""

    cutoff: Optional[int]
    mmap_us: float


def sweep_flush_cutoff(
    cutoffs: Sequence[Optional[int]],
    region_bytes: int = 4 * 1024 * 1024,
    spec: MachineSpec = M604_185,
) -> List[CutoffPoint]:
    """lat_mmap across cutoffs; None means search-flushing (no lazy)."""
    points = []
    for cutoff in cutoffs:
        if cutoff is None:
            config = KernelConfig.optimized().with_changes(
                lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
            )
        else:
            config = KernelConfig.optimized().with_changes(
                range_flush_cutoff=cutoff
            )
        latency = mmap_latency(
            boot(spec, config), region_bytes=region_bytes, iterations=4
        )
        points.append(CutoffPoint(cutoff=cutoff, mmap_us=latency))
    return points


def ascii_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """A terminal bar chart (for the sweep examples)."""
    peak = max(values) if values else 1.0
    lines = []
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(width * value / peak)) if peak else ""
        lines.append(f"  {label:<{label_width}}  {bar} {value:.3g}")
    return "\n".join(lines)
