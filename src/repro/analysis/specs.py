"""The declarative experiment registry (DESIGN.md's E1..E16).

Each entry in :data:`SPECS` is an :class:`ExperimentSpec` — the
machine/config matrix one paper result needs, the workload that
measures it, and the shape predicate over the measured numbers.  The
engine (:mod:`repro.analysis.engine`) executes them all through one
path for every consumer (the CLI, the benchmark suite, the obs
session).

Shape checks, not absolute checks: the substrate is a simulator, so
each spec's ``shape`` is "the paper's qualitative claim is true of the
measured numbers" (who wins, roughly by how much, where the crossover
sits).  Shapes read only the measured dict, so a cached (JSON
round-tripped) result reproduces the same verdict.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.spec import (
    ConfigVariant,
    ExperimentSpec,
    MatrixSpec,
    Measurement,
    experiment_sort_key,
)
from repro.hw.addr import decompose_ea, make_virtual_address
from repro.hw.hashtable import primary_hash, secondary_hash
from repro.kernel.config import (
    IdlePageClearPolicy,
    KernelConfig,
    ShootdownStrategy,
    VsidPolicy,
)
from repro.params import (
    HTAB_PTE_SLOTS,
    M603_133,
    M603_180,
    M604_133,
    M604_185,
    M604_200,
    MachineSpec,
    PAGE_SIZE,
    SEGMENT_SHIFT,
)
from repro.analysis.capacity import (
    DEFAULT_LOADS,
    DEFAULT_STRATEGIES,
    capacity_sweep,
    knee_load,
)
from repro.perf.histogram import occupancy_histogram
from repro.sim.simulator import Simulator, boot
from repro.sim.trace import WorkingSetTrace
from repro.workloads.service import service_run
from repro.workloads.kbuild import CACHE_RESIDENT, kernel_compile
from repro.workloads.lmbench import (
    LmbenchResult,
    context_switch,
    lmbench_suite,
    mmap_latency,
    pipe_latency,
)
from repro.workloads.mixes import multiprogram_mix


# ---------------------------------------------------------------------------
# E1 — Figure 1: the translation datapath
# ---------------------------------------------------------------------------


def _measure_e1(
    spec: ExperimentSpec, ea: int = 0x30012ABC, vsid: int = 0x123456
) -> Measurement:
    """Figure 1: decompose one EA through the architected datapath."""
    variant = spec.variants[0]
    fields = decompose_ea(ea)
    va = make_virtual_address(vsid, ea)
    h1 = primary_hash(vsid, fields.page_index)
    h2 = secondary_hash(vsid, fields.page_index)
    sim = boot(variant.machine, variant.config)
    task = sim.kernel.spawn("fig1", data_pages=8)
    sim.kernel.switch_to(task)
    result = sim.machine.translate(0x10000000)
    lines = [
        "Figure 1 — PowerPC hash-table translation",
        f"  EA        0x{ea:08x}",
        f"  SR#       {fields.segment} (4 bits)",
        f"  page idx  0x{fields.page_index:04x} (16 bits)",
        f"  offset    0x{fields.offset:03x} (12 bits)",
        f"  VSID      0x{vsid:06x} (24 bits)",
        f"  VA        0x{va.value:013x} (52 bits)",
        f"  hash1     0x{h1:05x}   hash2 0x{h2:05x}",
        f"  live translation path: {result.path}, PA 0x{result.pa:08x}",
    ]
    measured = {
        "segment": fields.segment,
        "page_index": fields.page_index,
        "offset": fields.offset,
        "va_bits": va.value.bit_length(),
        "live_path": result.path,
        "ea": ea,
        "hash1": h1,
        "hash2": h2,
    }
    return Measurement(measured, lines)


def _shape_e1(m: Dict[str, object]) -> bool:
    return bool(
        m["segment"] == (m["ea"] >> SEGMENT_SHIFT)  # type: ignore[operator]
        and m["va_bits"] <= 52  # type: ignore[operator]
        and m["hash2"] == (~m["hash1"]) & ((1 << 19) - 1)  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E2 — §5.1: BAT-mapping the kernel
# ---------------------------------------------------------------------------


def _measure_e2(spec: ExperimentSpec, units: int = 6) -> Measurement:
    """§5.1: kernel BAT map vs PTE-mapped kernel on the compile."""
    no_bat, with_bat = spec.variants
    base = kernel_compile(
        boot(no_bat.machine, no_bat.config), units=units, label=no_bat.label
    )
    bat = kernel_compile(
        boot(with_bat.machine, with_bat.config), units=units, label=with_bat.label
    )
    tlb_ratio = bat.tlb_misses / max(base.tlb_misses, 1)
    htab_ratio = bat.htab_misses / max(base.htab_misses, 1)
    wall_ratio = bat.wall_ms / base.wall_ms
    lines = [
        "E2 — §5.1 BAT-mapping the kernel (kernel compile)",
        f"  TLB misses      {base.tlb_misses} -> {bat.tlb_misses}"
        f"  (ratio {tlb_ratio:.2f}; paper 219M -> 197M = 0.90)",
        f"  htab misses     {base.htab_misses} -> {bat.htab_misses}"
        f"  (ratio {htab_ratio:.2f}; paper 1M -> 813k = 0.81)",
        f"  kernel TLB slots (high water) {base.kernel_tlb_entries_high_water}"
        f" -> {bat.kernel_tlb_entries_high_water} (paper: ~1/3 of TLB -> <=4)",
        f"  wall            {base.wall_ms:.1f} -> {bat.wall_ms:.1f} ms"
        f"  (ratio {wall_ratio:.2f}; paper 10min -> 8min = 0.80)",
        f"  [trace scale 1/{base.trace_scale}: full-compile equivalents "
        f"{base.full_scale_tlb_misses / 1e6:.0f}M -> "
        f"{bat.full_scale_tlb_misses / 1e6:.0f}M TLB misses, "
        f"{base.full_scale_wall_minutes:.1f} -> "
        f"{bat.full_scale_wall_minutes:.1f} min]",
    ]
    measured = {
        "tlb_ratio": tlb_ratio,
        "htab_ratio": htab_ratio,
        "kernel_tlb_slots_after": bat.kernel_tlb_entries_high_water,
        "wall_ratio": wall_ratio,
    }
    return Measurement(measured, lines)


def _shape_e2(m: Dict[str, object]) -> bool:
    return bool(
        m["tlb_ratio"] < 1.0  # type: ignore[operator]
        and m["htab_ratio"] <= 1.0  # type: ignore[operator]
        and m["kernel_tlb_slots_after"] <= 4  # type: ignore[operator]
        and m["wall_ratio"] <= 1.02  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E3 — §5.2: VSID scatter and hash-table occupancy
# ---------------------------------------------------------------------------


def _fill_htab(sim: Simulator, processes: int, pages: int) -> None:
    """Fault ``pages`` pages in each of ``processes`` address spaces.

    Most of each address space is a *shared* library mapping — the same
    physical frames mapped by every process under its own VSIDs, which
    is how a 32 MB machine generates far more PTEs than it has frames
    (each mapping needs its own hash-table entry).
    """
    kernel = sim.kernel
    anon_pages = max(pages // 6, 1)
    shared_pages = pages - anon_pages
    kernel.fs.create("shlib.so", shared_pages * PAGE_SIZE, wired=True)
    kernel.fs.prefault("shlib.so")
    for index in range(processes):
        task = kernel.spawn(
            f"fill{index}", text_pages=8, data_pages=anon_pages + 2
        )
        kernel.scheduler.enqueue(task)
        kernel.switch_to(task)
        for page in range(anon_pages):
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
        lib = kernel.sys_mmap(
            task, shared_pages * PAGE_SIZE, file="shlib.so", writable=False
        )
        for page in range(shared_pages):
            kernel.user_access(task, lib + page * PAGE_SIZE, 1, False)


def _measure_e3(
    spec: ExperimentSpec, processes: int = 40, pages_per_process: int = 500
) -> Measurement:
    """§5.2: hash occupancy for power-of-two vs scattered VSIDs vs BAT."""
    rows = []
    occupancies = {}
    for variant in spec.variants:
        sim = boot(variant.machine, variant.config)
        _fill_htab(sim, processes, pages_per_process)
        htab = sim.machine.htab
        histogram = occupancy_histogram(htab)
        occupancy = htab.occupancy()
        occupancies[variant.label] = occupancy
        rows.append(
            f"  {variant.label:<40} occupancy {occupancy:5.1%}"
            f"  evicts {htab.evicts:6d}"
            f"  hot-spot ratio {histogram.hot_spot_ratio():4.1f}"
            f"  entropy {histogram.entropy_efficiency():4.2f}"
        )
    lines = [
        "E3 — §5.2 VSID scatter tuning "
        f"({processes} procs x {pages_per_process} pages, "
        f"{processes * pages_per_process} inserts into {HTAB_PTE_SLOTS} slots)",
        *rows,
        "  paper: 37% (naive) -> 57% (scattered) -> 75% (kernel PTEs removed)",
    ]
    return Measurement(dict(occupancies), lines)


def _shape_e3(m: Dict[str, object]) -> bool:
    # The ladder: each scatter improvement raises occupancy; the BAT
    # variant must not regress it.
    values: List[float] = list(m.values())  # type: ignore[arg-type]
    return bool(
        values[0] < values[1] < values[2]
        and values[3] >= values[2] - 0.02
    )


# ---------------------------------------------------------------------------
# E4 — §6.1: fast (assembly) miss handlers
# ---------------------------------------------------------------------------


def _measure_e4(spec: ExperimentSpec) -> Measurement:
    """§6.1: C handlers vs hand-scheduled assembly handlers."""
    c_variant, asm_variant = spec.variants
    machine = c_variant.machine
    slow, fast = c_variant.config, asm_variant.config
    ctx_slow = context_switch(boot(machine, slow))
    ctx_fast = context_switch(boot(machine, fast))
    lat_slow = pipe_latency(boot(machine, slow))
    lat_fast = pipe_latency(boot(machine, fast))
    wall_slow = kernel_compile(
        boot(machine, slow), units=4, label=c_variant.label
    ).wall_ms
    wall_fast = kernel_compile(
        boot(machine, fast), units=4, label=asm_variant.label
    ).wall_ms
    ctx_ratio = ctx_fast / ctx_slow
    lat_ratio = lat_fast / lat_slow
    wall_ratio = wall_fast / wall_slow
    lines = [
        "E4 — §6.1 fast TLB reload handlers",
        f"  context switch {ctx_slow:6.1f} -> {ctx_fast:6.1f} us"
        f"  (ratio {ctx_ratio:.2f}; paper -33% = 0.67)",
        f"  pipe latency   {lat_slow:6.1f} -> {lat_fast:6.1f} us"
        f"  (ratio {lat_ratio:.2f}; paper -15% = 0.85)",
        f"  compile wall   {wall_slow:6.1f} -> {wall_fast:6.1f} ms"
        f"  (ratio {wall_ratio:.2f}; paper ~-15% = 0.85)",
    ]
    measured = {
        "ctxsw_ratio": ctx_ratio,
        "pipe_latency_ratio": lat_ratio,
        "compile_ratio": wall_ratio,
    }
    return Measurement(measured, lines)


def _shape_e4(m: Dict[str, object]) -> bool:
    return bool(
        m["ctxsw_ratio"] < 0.8  # type: ignore[operator]
        and m["pipe_latency_ratio"] < 0.92  # type: ignore[operator]
        and m["compile_ratio"] < 1.0  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E5 — Table 1: removing the hash table on the 603
# ---------------------------------------------------------------------------

#: The paper's Table 1 cells.
PAPER_TABLE1 = {
    "603 180MHz (htab)": dict(pstart=1.8, ctxsw=4, pipelat=17, pipebw=69, reread=33),
    "603 180MHz (no htab)": dict(pstart=1.7, ctxsw=3, pipelat=19, pipebw=73, reread=36),
    "604 185MHz": dict(pstart=1.6, ctxsw=4, pipelat=21, pipebw=88, reread=39),
    "604 200MHz": dict(pstart=1.6, ctxsw=4, pipelat=20, pipebw=92, reread=41),
}


def _measure_e5(spec: ExperimentSpec) -> Measurement:
    """Table 1: LmBench summary for direct (no-htab) TLB reloads."""
    results: List[LmbenchResult] = []
    for variant in spec.variants:
        results.append(
            lmbench_suite(
                lambda v=variant: boot(v.machine, v.config),
                label=variant.label,
                points=(
                    "ctxsw",
                    "pipe_latency",
                    "pipe_bw",
                    "file_reread",
                    "process_start",
                ),
            )
        )
    lines = ["E5 — Table 1: LmBench summary (htab vs no-htab on the 603)"]
    for result in results:
        paper = PAPER_TABLE1[result.label]
        lines.append(
            f"  {result.label:<22}"
            f" pstart {result.process_start_ms:5.2f} ms ({paper['pstart']})"
            f"  ctxsw {result.ctxsw_us:5.1f} us ({paper['ctxsw']})"
            f"  pipe lat {result.pipe_latency_us:5.1f} us ({paper['pipelat']})"
            f"  pipe bw {result.pipe_bw_mb_s:5.1f} ({paper['pipebw']})"
            f"  reread {result.file_reread_mb_s:5.1f} ({paper['reread']})"
        )
    lines.append("  (parenthesized: paper values)")
    measured = {
        result.label: {
            "pstart_ms": result.process_start_ms,
            "ctxsw_us": result.ctxsw_us,
            "pipe_lat_us": result.pipe_latency_us,
            "pipe_bw": result.pipe_bw_mb_s,
            "reread": result.file_reread_mb_s,
        }
        for result in results
    }
    return Measurement(measured, lines)


def _shape_e5(m: Dict[str, object]) -> bool:
    # The paper's headline: the 180MHz 603 keeps pace with the 604s.
    m603: Dict[str, float] = m["603 180MHz (no htab)"]  # type: ignore[assignment]
    m603_htab: Dict[str, float] = m["603 180MHz (htab)"]  # type: ignore[assignment]
    m604: Dict[str, float] = m["604 185MHz"]  # type: ignore[assignment]
    return bool(
        m603["pipe_bw"] >= 0.75 * m604["pipe_bw"]
        and m603["ctxsw_us"] <= 1.6 * m604["ctxsw_us"]
        and m603["pstart_ms"] <= m603_htab["pstart_ms"]
    )


# ---------------------------------------------------------------------------
# E6 — Table 2: lazy flushes + tunable range flushing
# ---------------------------------------------------------------------------

PAPER_TABLE2 = {
    "603 133MHz": dict(mmap=3240, ctxsw=6, pipelat=34, pipebw=52, reread=26),
    "603 133MHz (lazy)": dict(mmap=41, ctxsw=6, pipelat=28, pipebw=57, reread=32),
    "604 185MHz": dict(mmap=2733, ctxsw=4, pipelat=22, pipebw=90, reread=38),
    "604 185MHz (tune)": dict(mmap=33, ctxsw=4, pipelat=21, pipebw=94, reread=41),
}


def _measure_e6(spec: ExperimentSpec) -> Measurement:
    """Table 2: search-flushing vs lazy VSID flushing."""
    results = []
    for variant in spec.variants:
        results.append(
            lmbench_suite(
                lambda v=variant: boot(v.machine, v.config),
                label=variant.label,
                points=("mmap_latency", "ctxsw", "pipe_latency", "pipe_bw",
                        "file_reread"),
            )
        )
    lines = ["E6 — Table 2: LmBench summary for tunable TLB range flushing"]
    for result in results:
        paper = PAPER_TABLE2[result.label]
        lines.append(
            f"  {result.label:<20}"
            f" mmap {result.mmap_latency_us:7.1f} us ({paper['mmap']})"
            f"  ctxsw {result.ctxsw_us:5.1f} ({paper['ctxsw']})"
            f"  pipe lat {result.pipe_latency_us:5.1f} ({paper['pipelat']})"
            f"  pipe bw {result.pipe_bw_mb_s:5.1f} ({paper['pipebw']})"
            f"  reread {result.file_reread_mb_s:5.1f} ({paper['reread']})"
        )
    lines.append("  (parenthesized: paper values)")
    by_label = {result.label: result for result in results}
    improvement_603 = (
        by_label["603 133MHz"].mmap_latency_us
        / by_label["603 133MHz (lazy)"].mmap_latency_us
    )
    improvement_604 = (
        by_label["604 185MHz"].mmap_latency_us
        / by_label["604 185MHz (tune)"].mmap_latency_us
    )
    lines.append(
        f"  mmap improvement: 603 {improvement_603:.0f}x (paper 79x), "
        f"604 {improvement_604:.0f}x (paper 83x)"
    )
    measured = {
        "mmap_improvement_603": improvement_603,
        "mmap_improvement_604": improvement_604,
        "rows": {
            label: {
                "mmap_us": result.mmap_latency_us,
                "pipe_bw": result.pipe_bw_mb_s,
            }
            for label, result in by_label.items()
        },
    }
    return Measurement(measured, lines)


def _shape_e6(m: Dict[str, object]) -> bool:
    return bool(
        m["mmap_improvement_603"] > 40  # type: ignore[operator]
        and m["mmap_improvement_604"] > 40  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E7 — §7: idle-task zombie reclaim
# ---------------------------------------------------------------------------


def _measure_e7(
    spec: ExperimentSpec,
    rounds: int = 150,
    churn_every: int = 6,
    think_cycles: int = 120000,
) -> Measurement:
    """§7: zombie PTE reclaim in the idle task."""
    base_variant, reclaim_variant = spec.variants
    no_reclaim = multiprogram_mix(
        boot(base_variant.machine, base_variant.config),
        rounds=rounds, churn_every=churn_every, think_cycles=think_cycles,
        label=base_variant.label,
    )
    reclaim = multiprogram_mix(
        boot(reclaim_variant.machine, reclaim_variant.config),
        rounds=rounds, churn_every=churn_every, think_cycles=think_cycles,
        label=reclaim_variant.label,
    )
    lines = [
        "E7 — §7 idle-task zombie reclaim (multiprogramming mix)",
        f"  {'':<14}{'valid':>8}{'live':>8}{'zombie':>8}"
        f"{'evict/reload':>14}{'htab hit':>10}",
        f"  {'no reclaim':<14}{no_reclaim.valid_entries:8.0f}"
        f"{no_reclaim.live_entries:8.0f}{no_reclaim.zombie_entries:8.0f}"
        f"{no_reclaim.evict_ratio:14.2f}{no_reclaim.htab_hit_rate:10.2f}",
        f"  {'reclaim':<14}{reclaim.valid_entries:8.0f}"
        f"{reclaim.live_entries:8.0f}{reclaim.zombie_entries:8.0f}"
        f"{reclaim.evict_ratio:14.2f}{reclaim.htab_hit_rate:10.2f}",
        f"  zombies reclaimed: {reclaim.zombies_reclaimed}",
        "  paper: table fills with zombies; evict ratio >90% -> ~30%;",
        "  occupancy 600-700 -> 1400-2200 of 16384; hit rate 85% -> 98%",
    ]
    measured = {
        "evict_ratio_before": no_reclaim.evict_ratio,
        "evict_ratio_after": reclaim.evict_ratio,
        "valid_before": no_reclaim.valid_entries,
        "valid_after": reclaim.valid_entries,
        "hit_rate_before": no_reclaim.htab_hit_rate,
        "hit_rate_after": reclaim.htab_hit_rate,
        "zombies_reclaimed": reclaim.zombies_reclaimed,
    }
    return Measurement(measured, lines)


def _shape_e7(m: Dict[str, object]) -> bool:
    return bool(
        m["valid_before"] > 0.85 * HTAB_PTE_SLOTS  # type: ignore[operator]
        and m["valid_after"] < 0.6 * m["valid_before"]  # type: ignore[operator]
        and m["evict_ratio_after"]  # type: ignore[operator]
        < 0.5 * max(m["evict_ratio_before"], 1e-9)  # type: ignore[type-var]
        and m["zombies_reclaimed"] > 0  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E8 — §7: the range-flush cutoff
# ---------------------------------------------------------------------------


def _e8_workload(sim: Simulator, region_pages: int, iterations: int = 8):
    """Map a region, touch part of it, unmap — measuring the pair cost."""
    kernel = sim.kernel
    executive = sim.executive
    kernel.fs.create(f"map{region_pages}.dat", region_pages * PAGE_SIZE)
    touched = min(region_pages, 16)

    def factory(task):
        def body(t):
            for index in range(iterations + 1):
                if index == 1:
                    yield ("mark", "e8_start")
                addr = yield ("mmap", region_pages * PAGE_SIZE,
                              f"map{region_pages}.dat", None)
                for page in range(touched):
                    step = max(region_pages // touched, 1)
                    yield ("touch", addr + page * step * PAGE_SIZE, 4, False)
                yield ("munmap", addr, region_pages * PAGE_SIZE)
            yield ("mark", "e8_end")

        return body(task)

    executive.spawn("e8", factory)
    sim.run()
    delta = executive.mark_deltas("e8_start", "e8_end")[0]
    return (
        sim.cycles_to_us(delta / iterations),
        sim.machine.monitor.total_tlb_misses(),
    )


def _measure_e8(spec: ExperimentSpec) -> Measurement:
    """§7: sweep the range-flush cutoff; mmap latency and TLB misses."""
    large_pages = 1024  # the lat_mmap-style 4 MB region
    small_pages = 8  # under the tuned cutoff
    sweep = []
    for variant in spec.variants:
        # Pure lat_mmap (untouched region: the paper's 80x number) plus
        # a touched variant so the TLB-miss comparison is meaningful.
        pure_us = mmap_latency(boot(variant.machine, variant.config))
        large_us, large_misses = _e8_workload(
            boot(variant.machine, variant.config), large_pages
        )
        small_us, _ = _e8_workload(
            boot(variant.machine, variant.config), small_pages
        )
        sweep.append((variant.label, pure_us, large_us, small_us, large_misses))
    lines = [
        "E8 — §7 tunable range-flush cutoff",
        f"  {'':<20}{'lat_mmap 4MB':>14}{'4MB touched':>14}"
        f"{'32KB touched':>14}{'TLB misses':>12}",
    ]
    for label, pure_us, large_us, small_us, misses in sweep:
        lines.append(
            f"  {label:<20}{pure_us:11.1f} us{large_us:11.1f} us"
            f"{small_us:11.1f} us{misses:12d}"
        )
    lines.append(
        "  paper: cutoff 20 pages -> mmap latency 80x better, "
        "'at no cost to the TLB hit rate'"
    )
    by_label = {entry[0]: entry for entry in sweep}
    search = by_label["search (no lazy)"]
    tuned = by_label["cutoff 20 (tuned)"]
    infinite = by_label["cutoff inf"]
    improvement = search[1] / tuned[1]
    measured = {
        "search_us": search[1],
        "cutoff20_us": tuned[1],
        "improvement": improvement,
        "misses_search": search[4],
        "misses_cutoff20": tuned[4],
        "small_region_search_us": search[3],
        "small_region_cutoff20_us": tuned[3],
        "cutoff_inf_us": infinite[1],
    }
    return Measurement(measured, lines)


def _shape_e8(m: Dict[str, object]) -> bool:
    return bool(
        m["improvement"] > 40  # type: ignore[operator] # the 80x-class improvement on big ranges
        and m["cutoff_inf_us"] > 5 * m["cutoff20_us"]  # type: ignore[operator] # no cutoff -> back to search cost
        and m["misses_cutoff20"] <= m["misses_search"] * 1.10  # type: ignore[operator] # no extra TLB misses
        and m["small_region_cutoff20_us"]  # type: ignore[operator]
        <= m["small_region_search_us"] * 1.25  # type: ignore[operator] # small ranges stay cheap
    )


# ---------------------------------------------------------------------------
# E9 — §8: cache misuse on page tables
# ---------------------------------------------------------------------------


def _measure_e9(spec: ExperimentSpec) -> Measurement:
    """§8: memory accesses and cache lines created by the refill path."""
    # Part 1: count the architected worst case on one cold miss.
    cold, cached_variant, uncached_variant = spec.variants
    sim = boot(cold.machine, cold.config)
    kernel = sim.kernel
    task = kernel.spawn("e9", data_pages=4)
    kernel.switch_to(task)
    # Fault the page in (so the Linux PTE exists), then flush everything
    # so the next access walks hash table (miss) + PTE tree + reinsert.
    kernel.user_access(task, 0x10000000, 1, True)
    sim.machine.htab.invalidate_all()
    sim.machine.invalidate_tlbs()
    # Cold caches: the paper's counting assumes the PTEG and PTE-tree
    # lines are not already resident.
    sim.machine.dcache.flush_all()
    sim.machine.l2.flush_all()
    misses_before = sim.machine.dcache.stats.misses
    kernel.user_access(task, 0x10000000, 1, False)
    # Each data-cache miss on the refill path creates one new line.
    new_lines = sim.machine.dcache.stats.misses - misses_before
    # Architected accounting (§8): 16 (search+miss) + 2..3 (tree) + up
    # to 16 (insert scan) = ~34 memory accesses.
    search_refs = 16  # both PTEGs probed on the miss
    tree_refs = 3
    insert_refs = 16  # worst case scan of both PTEGs
    worst_case = search_refs + tree_refs + insert_refs

    # Part 2: cached vs uncached page tables on a TLB-heavy workload.
    def storm(variant: ConfigVariant):
        sim = boot(variant.machine, variant.config)
        kernel = sim.kernel
        task = kernel.spawn("storm", data_pages=402)
        kernel.switch_to(task)
        trace = WorkingSetTrace(
            0x01000000, 12, 0x10000000, 400, hot_fraction=1.0,
            lines_per_visit=4, seed=3,
        )
        mark = sim.machine.clock.snapshot()
        for visit in trace.visits(12000):
            kernel.user_access(task, visit.ea, visit.lines, visit.write,
                               visit.kind, first_line=visit.first_line)
        cycles = sim.machine.clock.since(mark)
        return cycles, sim.machine.dcache.stats.misses

    cached_cycles, cached_misses = storm(cached_variant)
    uncached_cycles, uncached_misses = storm(uncached_variant)
    lines = [
        "E9 — §8 cache misuse on page tables",
        f"  cold refill path: {worst_case} architected memory accesses "
        "(16 search + 3 tree + 16 insert; paper: 34)",
        f"  new data-cache lines created by one refill: {new_lines} "
        "(paper: up to 18)",
        f"  TLB-storm with cached page tables:   {cached_cycles} cycles, "
        f"{cached_misses} dcache misses",
        f"  TLB-storm with uncached page tables: {uncached_cycles} cycles, "
        f"{uncached_misses} dcache misses",
        f"  dcache misses saved by uncaching page tables: "
        f"{cached_misses - uncached_misses}",
    ]
    measured = {
        "worst_case_refs": worst_case,
        "new_cache_lines_per_refill": new_lines,
        "storm_cached_misses": cached_misses,
        "storm_uncached_misses": uncached_misses,
    }
    return Measurement(measured, lines)


def _shape_e9(m: Dict[str, object]) -> bool:
    return bool(
        m["new_cache_lines_per_refill"] <= 18  # type: ignore[operator]
        and m["storm_uncached_misses"] < m["storm_cached_misses"]  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E10 — §9: idle-task page clearing
# ---------------------------------------------------------------------------


def _pollution_busy(
    machine: MachineSpec, config: KernelConfig, mark_prefix: str = "poll"
) -> int:
    """Steady working set + idle windows under one clearing config.

    Sub-experiment A of E10 (and, with ``mark_prefix='e14'``, the E14
    ablation's harness): warm to steady state, then measure rounds of
    work separated by think-time (idle windows).
    """
    sim = boot(machine, config)
    executive = sim.executive
    start_mark = f"{mark_prefix}_start"
    end_mark = f"{mark_prefix}_end"

    def factory(task):
        def body(t):
            trace = WorkingSetTrace(
                0x01000000, 12, 0x10000000, 360, hot_fraction=0.9,
                lines_per_visit=32, drift=0.0, seed=7,
            )
            # Warm up to steady state, then measure rounds of work with
            # think-time (idle windows) between them.
            for _ in range(3):
                yield ("work", trace.visit_list(500))
            yield ("mark", start_mark)
            for _ in range(10):
                yield ("sleep", 900000)
                yield ("work", trace.visit_list(500))
            yield ("mark", end_mark)

        return body(task)

    executive.spawn("steady", factory, data_pages=364)
    sim.run()
    total = executive.mark_deltas(start_mark, end_mark)[0]
    # The sleeps themselves are constant; compare busy time.
    return total - 10 * 900000


def _measure_e10(spec: ExperimentSpec, units: int = 5) -> Measurement:
    """§9: the three page-clearing variants vs the baseline."""
    # Sub-experiment A: pollution (low allocation, idle-heavy).
    busy = {}
    for variant in spec.variants:
        busy[variant.label] = _pollution_busy(variant.machine, variant.config)
    # Sub-experiment B: allocation-heavy compile.
    walls = {}
    for variant in spec.variants:
        config = variant.config.with_changes(idle_zombie_reclaim=True)
        result = kernel_compile(
            boot(variant.machine, config), units=units, profile=CACHE_RESIDENT,
            label=variant.label,
        )
        walls[variant.label] = result.wall_ms
    off = IdlePageClearPolicy.OFF.value
    lines = [
        "E10 — §9 idle-task page clearing",
        "  A: steady working set, idle windows (pollution regime); "
        "busy cycles relative to OFF:",
    ]
    for label, value in busy.items():
        lines.append(
            f"    {label:<18} {value:10d} ({value / busy[off]:.3f}x)"
        )
    lines.append(
        "  B: allocation-heavy compile (pre-clear benefit regime); "
        "wall ms relative to OFF:"
    )
    for label, value in walls.items():
        lines.append(
            f"    {label:<18} {value:10.1f} ({value / walls[off]:.3f}x)"
        )
    lines.append(
        "  paper: cached+list ~2x slower; uncached w/o list: no change; "
        "uncached+list: faster"
    )
    measured = {
        "pollution_cached_ratio":
            busy[IdlePageClearPolicy.CACHED_LIST.value] / busy[off],
        "pollution_uncached_nolist_ratio":
            busy[IdlePageClearPolicy.UNCACHED_NO_LIST.value] / busy[off],
        "compile_uncached_list_ratio":
            walls[IdlePageClearPolicy.UNCACHED_LIST.value] / walls[off],
        "compile_uncached_nolist_ratio":
            walls[IdlePageClearPolicy.UNCACHED_NO_LIST.value] / walls[off],
        "compile_cached_ratio":
            walls[IdlePageClearPolicy.CACHED_LIST.value] / walls[off],
    }
    return Measurement(measured, lines)


def _shape_e10(m: Dict[str, object]) -> bool:
    return bool(
        m["pollution_cached_ratio"] > 1.05  # type: ignore[operator] # cached clearing hurts
        and 0.97 < m["pollution_uncached_nolist_ratio"] < 1.03  # type: ignore[operator] # uncached w/o list: no change
        and m["compile_uncached_list_ratio"] < 0.97  # type: ignore[operator] # uncached + list wins
        and 0.97 < m["compile_uncached_nolist_ratio"] < 1.03  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E11 — Table 3: OS comparison
# ---------------------------------------------------------------------------


def _measure_e11(spec: ExperimentSpec) -> Measurement:
    """Table 3: Linux/PPC vs unoptimized vs Rhapsody vs MkLinux vs AIX."""
    from repro.oscompare.runner import PAPER_TABLE3, run_table3

    rows = run_table3()
    lines = ["E11 — Table 3: LmBench summary for Linux/PPC and other OSes"]
    for row in rows:
        paper = PAPER_TABLE3[row.os]
        lines.append(
            f"  {row.os:<22} null {row.null_syscall_us:5.1f} ({paper[0]:2d})"
            f"  ctxsw {row.ctxsw_us:5.1f} ({paper[1]:2d})"
            f"  pipe lat {row.pipe_latency_us:6.1f} ({paper[2]:3d})"
            f"  pipe bw {row.pipe_bw_mb_s:5.1f} ({paper[3]:2d})"
        )
    lines.append("  (parenthesized: paper values; all on a 133MHz 604)")
    measured = {
        row.os: {
            "null_us": row.null_syscall_us,
            "ctxsw_us": row.ctxsw_us,
            "pipe_lat_us": row.pipe_latency_us,
            "pipe_bw": row.pipe_bw_mb_s,
        }
        for row in rows
    }
    return Measurement(measured, lines)


def _shape_e11(m: Dict[str, object]) -> bool:
    linux: Dict[str, float] = m["Linux/PPC"]  # type: ignore[assignment]
    return all(
        linux["null_us"] < other["null_us"]  # type: ignore[index]
        and linux["ctxsw_us"] < other["ctxsw_us"]  # type: ignore[index]
        and linux["pipe_lat_us"] < other["pipe_lat_us"]  # type: ignore[index]
        and linux["pipe_bw"] > other["pipe_bw"]  # type: ignore[index]
        for os_name, other in m.items()
        if os_name != "Linux/PPC"
    )


def _paper_table3() -> Dict[str, Dict[str, object]]:
    from repro.oscompare.runner import PAPER_TABLE3

    return {
        os_name: dict(zip(("null_us", "ctxsw_us", "pipe_lat_us", "pipe_bw"),
                          values))
        for os_name, values in PAPER_TABLE3.items()
    }


# ---------------------------------------------------------------------------
# E12 — §5.1: BAT-mapping the I/O space
# ---------------------------------------------------------------------------


def _measure_e12(spec: ExperimentSpec) -> Measurement:
    """§5.1: I/O-space BATs 'did not improve these measures significantly'."""
    from repro.kernel.kernel import IO_BASE_EA

    def run(variant: ConfigVariant):
        sim = boot(variant.machine, variant.config)
        kernel = sim.kernel
        task = kernel.spawn("xserver", data_pages=66)
        kernel.switch_to(task)
        trace = WorkingSetTrace(
            0x01000000, 12, 0x10000000, 64, hot_fraction=0.5, seed=11,
        )
        mark = sim.machine.clock.snapshot()
        visits = list(trace.visits(4000))
        for index, visit in enumerate(visits):
            kernel.user_access(task, visit.ea, visit.lines, visit.write,
                               visit.kind, first_line=visit.first_line)
            if index % 40 == 39:
                # The occasional framebuffer poke: rare enough that its
                # TLB entries "are quickly displaced by other mappings".
                kernel.machine.access_page(
                    IO_BASE_EA + (index % 64) * PAGE_SIZE, 4, write=True
                )
        cycles = sim.machine.clock.since(mark)
        return cycles, sim.machine.monitor.total_tlb_misses()

    base_variant, bat_variant = spec.variants
    base_cycles, base_misses = run(base_variant)
    bat_cycles, bat_misses = run(bat_variant)
    ratio = bat_cycles / base_cycles
    lines = [
        "E12 — §5.1 BAT-mapping the I/O space",
        f"  without I/O BAT: {base_cycles} cycles, {base_misses} TLB misses",
        f"  with I/O BAT:    {bat_cycles} cycles, {bat_misses} TLB misses",
        f"  cycle ratio {ratio:.3f} "
        "(paper: 'did not improve these measures significantly')",
    ]
    measured = {
        "cycle_ratio": ratio,
        "tlb_misses_saved": base_misses - bat_misses,
    }
    return Measurement(measured, lines)


def _shape_e12(m: Dict[str, object]) -> bool:
    return bool(0.95 < m["cycle_ratio"] < 1.02)  # type: ignore[operator]


# ---------------------------------------------------------------------------
# E13 — §6.2: removing the hash table (compile -5%)
# ---------------------------------------------------------------------------


def _measure_e13(spec: ExperimentSpec, units: int = 5) -> Measurement:
    """§6.2: the no-htab 603 compile and the 603-vs-604 headline."""
    htab_variant, nohtab_variant, m604_variant = spec.variants
    htab = kernel_compile(
        boot(htab_variant.machine, htab_variant.config),
        units=units, label=htab_variant.label,
    )
    nohtab = kernel_compile(
        boot(nohtab_variant.machine, nohtab_variant.config),
        units=units, label=nohtab_variant.label,
    )
    m604 = kernel_compile(
        boot(m604_variant.machine, m604_variant.config),
        units=units, label=m604_variant.label,
    )
    ratio = nohtab.wall_ms / htab.wall_ms
    vs604 = nohtab.wall_ms / m604.wall_ms
    lines = [
        "E13 — §6.2 removing the hash table on the 603 (kernel compile)",
        f"  603@180 with htab emulation: {htab.wall_ms:8.1f} ms",
        f"  603@180 direct PTE-tree:     {nohtab.wall_ms:8.1f} ms"
        f"  (ratio {ratio:.3f}; paper -5% = 0.95)",
        f"  604@200 (hardware walk):     {m604.wall_ms:8.1f} ms"
        f"  (603 no-htab is {vs604:.2f}x of the 604@200's time)",
    ]
    return Measurement({"compile_ratio": ratio, "vs_604_200": vs604}, lines)


def _shape_e13(m: Dict[str, object]) -> bool:
    return bool(
        m["compile_ratio"] < 1.0 and m["vs_604_200"] < 1.35  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# E14 — §10.1 ablation: uncached idle task
# ---------------------------------------------------------------------------


def _measure_e14(spec: ExperimentSpec) -> Measurement:
    """§10.1: run the idle task cache-inhibited (future-work ablation)."""
    cached_variant, uncached_variant = spec.variants
    normal = _pollution_busy(
        cached_variant.machine, cached_variant.config, mark_prefix="e14"
    )
    uncached = _pollution_busy(
        uncached_variant.machine, uncached_variant.config, mark_prefix="e14"
    )
    ratio = uncached / normal
    lines = [
        "E14 — §10.1 ablation: cache-inhibited idle task",
        f"  idle cached:       busy {normal} cycles",
        f"  idle cache-inhibited: busy {uncached} cycles (ratio {ratio:.3f})",
        "  paper (conjecture): uncaching the idle task avoids polluting "
        "the cache",
    ]
    return Measurement({"busy_ratio": ratio}, lines)


def _shape_e14(m: Dict[str, object]) -> bool:
    return bool(m["busy_ratio"] < 1.0)  # type: ignore[operator]


# ---------------------------------------------------------------------------
# E15 — §10.2 ablation: cache preloads in the switch path
# ---------------------------------------------------------------------------


def _measure_e15(spec: ExperimentSpec) -> Measurement:
    """§10.2: dcbt prefetches at context-switch entry (future work).

    The preloads only matter when the user working sets have evicted the
    switch path's data between switches, so the harness thrashes the L1
    before each measured switch — the cache-hostile regime the paper's
    conjecture targets.
    """
    from repro.params import KERNELBASE

    def switch_cost(variant: ConfigVariant) -> float:
        sim = boot(variant.machine, variant.config)
        kernel = sim.kernel
        first = kernel.spawn("a")
        second = kernel.spawn("b")
        kernel.switch_to(first)
        total = 0
        thrash_base = KERNELBASE + 4 * 1024 * 1024
        for iteration in range(40):
            # A user burst large enough to evict the kernel's switch
            # data from the L1 (but not the L2).
            for page in range(12):
                sim.machine.access_page(
                    thrash_base + page * PAGE_SIZE, lines=128, write=True
                )
            target = second if kernel.current_task is first else first
            start = sim.machine.clock.snapshot()
            kernel.switch_to(target)
            total += sim.machine.clock.since(start)
        return total / 40

    base_variant, preload_variant = spec.variants
    base = switch_cost(base_variant)
    preloaded = switch_cost(preload_variant)
    ratio = preloaded / base if base else 1.0
    lines = [
        "E15 — §10.2 ablation: cache preloads in the context-switch path",
        f"  cache-cold switch cost: {base:6.1f} -> {preloaded:6.1f} cycles "
        f"(ratio {ratio:.3f})",
        "  paper (conjecture): 'we can make significant gains with "
        "intelligent use of cache preloads in context switching'",
    ]
    measured = {"ctxsw8_ratio": ratio, "base_us": base, "preload_us": preloaded}
    return Measurement(measured, lines)


def _shape_e15(m: Dict[str, object]) -> bool:
    return bool(m["ctxsw8_ratio"] < 0.99)  # type: ignore[operator]


# ---------------------------------------------------------------------------
# E16 — §7 ablation: the rejected on-demand zombie scavenge
# ---------------------------------------------------------------------------


def _measure_e16(spec: ExperimentSpec) -> Measurement:
    """§7's rejected design: scavenge zombies when space runs out.

    The paper: "performance would also be inconsistent if we had to
    occasionally scan the hash table and invalidate zombie PTEs when we
    needed more space".  We measure per-access latency spikes under both
    designs on a zombie-saturated table.
    """

    def latency_profile(variant: ConfigVariant):
        sim = boot(variant.machine, variant.config)
        kernel = sim.kernel
        htab = sim.machine.htab
        task = kernel.spawn("churn", data_pages=120)
        kernel.switch_to(task)
        rng = random.Random(spec.seed)
        pages = list(range(0, 118, 2))
        # Fill the table to the brink with zombie PTEs (context churn),
        # so eviction pressure exists during the measured phase.  Stop at
        # the first evict: under the on-demand design that evict already
        # scavenged, and continuing would just oscillate.
        while (
            htab.valid_entries() < htab.slots - 40 and htab.evicts == 0
        ):
            for page in pages:
                kernel.user_access(
                    task, 0x10000000 + page * PAGE_SIZE, 1, True
                )
            kernel.flush.flush_mm(task.mm)
        # Measured phase: random re-touches; each may trigger a reload,
        # and periodic flushes keep the zombie supply growing.
        samples = []
        for index in range(5000):
            page = pages[rng.randrange(len(pages))]
            start = sim.machine.clock.snapshot()
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, False)
            samples.append(sim.machine.clock.since(start))
            if index % 100 == 99:
                kernel.flush.flush_mm(task.mm)
        samples.sort()
        mean = sum(samples) / len(samples)
        p99 = samples[int(len(samples) * 0.99)]
        worst = samples[-1]
        bursts = sim.machine.monitor.get("scavenge_burst")
        return mean, p99, worst, bursts

    idle_variant, demand_variant = spec.variants
    idle_mean, idle_p99, idle_worst, _ = latency_profile(idle_variant)
    dem_mean, dem_p99, dem_worst, bursts = latency_profile(demand_variant)
    lines = [
        "E16 — §7 ablation: rejected on-demand zombie scavenging",
        f"  {'':<22}{'mean':>8}{'p99':>8}{'worst':>8}  (cycles/access)",
        f"  {'idle-task reclaim':<22}{idle_mean:8.1f}{idle_p99:8d}"
        f"{idle_worst:8d}",
        f"  {'on-demand scavenge':<22}{dem_mean:8.1f}{dem_p99:8d}"
        f"{dem_worst:8d}   ({bursts} scavenge bursts)",
        "  paper: the on-demand design was rejected because performance "
        "'would be inconsistent'",
    ]
    measured = {
        "idle_worst": idle_worst,
        "demand_worst": dem_worst,
        "idle_p99": idle_p99,
        "demand_p99": dem_p99,
        "scavenge_bursts": bursts,
    }
    return Measurement(measured, lines)


def _shape_e16(m: Dict[str, object]) -> bool:
    return bool(
        m["demand_worst"] > 3 * m["idle_worst"]  # type: ignore[operator]
        and m["scavenge_bursts"] > 0  # type: ignore[operator]
    )


# ---------------------------------------------------------------------------
# Variant matrices
# ---------------------------------------------------------------------------


def _e2_variants() -> Tuple[ConfigVariant, ...]:
    unopt = KernelConfig.unoptimized()
    return (
        ConfigVariant("no BAT", M604_185, unopt),
        ConfigVariant("BAT", M604_185, unopt.with_changes(bat_kernel_map=True)),
    )


def _e3_variants() -> Tuple[ConfigVariant, ...]:
    # (label, scatter constant, BAT kernel map).  Power-of-two
    # multipliers alias in the low hash bits; the larger the power, the
    # fewer distinct buckets the processes can reach.
    cells = (
        ("pid<<11 (pow2: all pids share buckets)", 2048, False),
        ("pid<<4  (pow2, milder aliasing)", 16, False),
        ("pid*37  (non-pow2 scatter)", 37, False),
        ("pid*37 + kernel via BAT", 37, True),
    )
    return tuple(
        ConfigVariant(
            label,
            M604_185,
            KernelConfig(
                vsid_policy=VsidPolicy.PID_SCATTER,
                vsid_scatter_constant=constant,
                bat_kernel_map=bat,
            ),
        )
        for label, constant, bat in cells
    )


def _e4_variants() -> Tuple[ConfigVariant, ...]:
    slow = KernelConfig.unoptimized()
    fast = slow.with_changes(fast_handlers=True, optimized_entry=True)
    return (
        ConfigVariant("C", M604_133, slow),
        ConfigVariant("asm", M604_133, fast),
    )


def _e5_variants() -> Tuple[ConfigVariant, ...]:
    opt = KernelConfig.optimized()
    return (
        ConfigVariant(
            "603 180MHz (htab)", M603_180, opt.with_changes(use_htab_on_603=True)
        ),
        ConfigVariant("603 180MHz (no htab)", M603_180, opt),
        ConfigVariant("604 185MHz", M604_185, opt),
        ConfigVariant("604 200MHz", M604_200, opt),
    )


def _e6_variants() -> Tuple[ConfigVariant, ...]:
    # The non-lazy columns are otherwise-optimized kernels that still
    # search-flush; the lazy columns add the VSID bump + cutoff.
    lazy = KernelConfig.optimized()
    search = lazy.with_changes(
        lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
    )
    return (
        ConfigVariant(
            "603 133MHz", M603_133, search.with_changes(use_htab_on_603=True)
        ),
        ConfigVariant(
            "603 133MHz (lazy)", M603_133, lazy.with_changes(use_htab_on_603=True)
        ),
        ConfigVariant("604 185MHz", M604_185, search),
        ConfigVariant("604 185MHz (tune)", M604_185, lazy),
    )


def _e7_variants() -> Tuple[ConfigVariant, ...]:
    return (
        ConfigVariant(
            "no reclaim",
            M604_185,
            KernelConfig.optimized().with_changes(idle_zombie_reclaim=False),
        ),
        ConfigVariant("idle reclaim", M604_185, KernelConfig.optimized()),
    )


def _e8_variants() -> Tuple[ConfigVariant, ...]:
    def for_cutoff(cutoff: Optional[int]) -> KernelConfig:
        if cutoff is None:
            return KernelConfig.optimized().with_changes(
                lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
            )
        return KernelConfig.optimized().with_changes(range_flush_cutoff=cutoff)

    return tuple(
        ConfigVariant(label, M604_185, for_cutoff(cutoff))
        for cutoff, label in (
            (None, "search (no lazy)"),
            (5, "cutoff 5"),
            (20, "cutoff 20 (tuned)"),
            (10**6, "cutoff inf"),
        )
    )


def _e9_variants() -> Tuple[ConfigVariant, ...]:
    config = KernelConfig.optimized()
    return (
        ConfigVariant("cold refill", M604_185, config),
        ConfigVariant(
            "storm cached", M604_185, config.with_changes(cache_page_tables=True)
        ),
        ConfigVariant(
            "storm uncached", M604_185,
            config.with_changes(cache_page_tables=False),
        ),
    )


def _e10_variants() -> Tuple[ConfigVariant, ...]:
    return tuple(
        ConfigVariant(
            policy.value,
            M604_185,
            KernelConfig.optimized().with_changes(
                idle_page_clear=policy, idle_zombie_reclaim=False
            ),
        )
        for policy in (
            IdlePageClearPolicy.OFF,
            IdlePageClearPolicy.CACHED_LIST,
            IdlePageClearPolicy.UNCACHED_NO_LIST,
            IdlePageClearPolicy.UNCACHED_LIST,
        )
    )


def _e12_variants() -> Tuple[ConfigVariant, ...]:
    return (
        ConfigVariant(
            "no I/O BAT", M604_185,
            KernelConfig.optimized().with_changes(bat_io_map=False),
        ),
        ConfigVariant(
            "I/O BAT", M604_185,
            KernelConfig.optimized().with_changes(bat_io_map=True),
        ),
    )


def _e13_variants() -> Tuple[ConfigVariant, ...]:
    opt = KernelConfig.optimized()
    return (
        ConfigVariant(
            "603 htab", M603_180, opt.with_changes(use_htab_on_603=True)
        ),
        ConfigVariant("603 no-htab", M603_180, opt),
        ConfigVariant("604 200MHz", M604_200, opt),
    )


def _e14_variants() -> Tuple[ConfigVariant, ...]:
    cached = KernelConfig.optimized().with_changes(
        idle_page_clear=IdlePageClearPolicy.CACHED_LIST,
        idle_zombie_reclaim=True,
    )
    return (
        ConfigVariant("idle cached", M604_185, cached),
        ConfigVariant(
            "idle cache-inhibited", M604_185,
            cached.with_changes(idle_uncached=True),
        ),
    )


def _e15_variants() -> Tuple[ConfigVariant, ...]:
    return (
        ConfigVariant(
            "no preload", M604_185,
            KernelConfig.optimized().with_changes(cache_preloads=False),
        ),
        ConfigVariant(
            "preload", M604_185,
            KernelConfig.optimized().with_changes(cache_preloads=True),
        ),
    )


def _e16_variants() -> Tuple[ConfigVariant, ...]:
    return (
        ConfigVariant("idle-task reclaim", M604_185, KernelConfig.optimized()),
        ConfigVariant(
            "on-demand scavenge", M604_185,
            KernelConfig.optimized().with_changes(
                idle_zombie_reclaim=False, on_demand_scavenge=True
            ),
        ),
    )


def _smp_variants() -> Tuple[ConfigVariant, ...]:
    """One variant per shootdown strategy, on the fully optimized 604."""
    return tuple(
        ConfigVariant(
            strategy.value, M604_185,
            KernelConfig.optimized().with_changes(
                shootdown_strategy=strategy
            ),
        )
        for strategy in ShootdownStrategy
    )


# ---------------------------------------------------------------------------
# E17/E18/E19 — SMP extension: TLB-shootdown strategies at 2/4/8 CPUs
# ---------------------------------------------------------------------------


def _smp_body(region_pages: int, rounds: int):
    """mmap / touch / yield / munmap / re-mmap — the shootdown driver.

    The region stays under the §7 range-flush cutoff so every munmap
    takes the per-page search path and feeds ``page_invalidated`` into
    the shootdown engine; the second mmap of the same anonymous size is
    the reuse-pool revival the MMAP_REUSE strategy elides flushes for.
    """

    def gen(t):
        for _iteration in range(2):
            addr = yield ("mmap", region_pages * PAGE_SIZE, None, None)
            for r in range(rounds):
                page = (r * 5) % region_pages
                yield ("touch", addr + page * PAGE_SIZE, 8, True)
                if r % 3 == 2:
                    yield ("yield",)
            yield ("munmap", addr, region_pages * PAGE_SIZE)
        yield ("exit", 0)

    return gen


def _measure_smp(spec: ExperimentSpec, n_cpus: int) -> Measurement:
    """Strategy cross-product at a fixed CPU count.

    Tasks have fixed home CPUs (round-robin at spawn, no migration), so
    the interleaving — and every per-CPU ledger — is deterministic.
    """
    region_pages = 12  # under the tuned cutoff 20: search-path flushes
    rounds = 36
    processes = min(3 * n_cpus, 12)
    rows: Dict[str, Dict[str, int]] = {}
    for variant in spec.variants:
        sim = boot(variant.machine, variant.config, n_cpus=n_cpus)
        for index in range(processes):
            sim.executive.spawn(
                f"smp{index}", _smp_body(region_pages, rounds)
            )
        sim.run()
        counters = sim.machine.monitor_totals()
        shootdown_cycles = sum(
            cpu.clock.breakdown().get("shootdown", 0)
            for cpu in sim.machine.cpus
        )
        flush_cycles = sum(
            cpu.clock.breakdown().get("flush", 0)
            for cpu in sim.machine.cpus
        )
        rows[variant.label] = {
            "total_cycles": sim.total_cycles,
            "shootdown_cycles": shootdown_cycles,
            "flush_cycles": flush_cycles,
            "ipi_sent": counters.get("ipi_sent", 0),
            "ipi_received": counters.get("ipi_received", 0),
            "shootdown_deferred": counters.get("shootdown_deferred", 0),
            "shootdown_drained": counters.get("shootdown_drained", 0),
            "flush_skipped_reuse": counters.get("flush_skipped_reuse", 0),
            "reuse_pool_hit": counters.get("reuse_pool_hit", 0),
        }
    lines = [
        f"{spec.id} — TLB-shootdown strategies at {n_cpus} CPUs "
        f"({processes} processes, fixed affinity)",
        f"  {'strategy':<12}{'total':>12}{'shootdown':>11}{'flush':>10}"
        f"{'IPIs':>7}{'deferred':>9}{'drained':>8}{'reuse':>6}",
    ]
    for label, row in rows.items():
        lines.append(
            f"  {label:<12}{row['total_cycles']:>12,}"
            f"{row['shootdown_cycles']:>11,}{row['flush_cycles']:>10,}"
            f"{row['ipi_sent']:>7}{row['shootdown_deferred']:>9}"
            f"{row['shootdown_drained']:>8}{row['reuse_pool_hit']:>6}"
        )
    lines.append(
        "  expectation: broadcast IPIs every flush; targeted IPIs none "
        "(fixed affinity); lazy defers and drains at ctxsw; mmap_reuse "
        "additionally skips munmap flushes by pooling the region"
    )
    broadcast = rows["broadcast"]
    targeted = rows["targeted"]
    lazy = rows["lazy"]
    reuse = rows["mmap_reuse"]
    measured: Dict[str, object] = {
        "n_cpus": n_cpus,
        "processes": processes,
        "rows": rows,
        "broadcast_ipis": broadcast["ipi_sent"],
        "targeted_ipis": targeted["ipi_sent"],
        "lazy_deferred": lazy["shootdown_deferred"],
        "reuse_flushes_skipped": reuse["flush_skipped_reuse"],
        "reuse_vs_broadcast": (
            reuse["total_cycles"] / broadcast["total_cycles"]
        ),
    }
    return Measurement(measured, lines)


def _shape_smp(m: Dict[str, object]) -> bool:
    rows = m["rows"]  # type: ignore[index]
    broadcast = rows["broadcast"]  # type: ignore[index]
    targeted = rows["targeted"]  # type: ignore[index]
    lazy = rows["lazy"]  # type: ignore[index]
    reuse = rows["mmap_reuse"]  # type: ignore[index]
    return bool(
        broadcast["ipi_sent"] > 0  # broadcast really IPIs remotes
        and broadcast["ipi_sent"] == broadcast["ipi_received"]
        and targeted["ipi_sent"] == 0  # fixed affinity: nothing to IPI
        and broadcast["shootdown_cycles"] > targeted["shootdown_cycles"]
        and lazy["ipi_sent"] <= broadcast["ipi_sent"]
        and lazy["shootdown_deferred"] > 0  # deferral actually engaged
        and lazy["shootdown_drained"] > 0  # ... and drained at ctxsw
        and reuse["reuse_pool_hit"] > 0  # the second mmap revived a vma
        and reuse["flush_skipped_reuse"] > 0
        and reuse["flush_cycles"] < broadcast["flush_cycles"]
        and reuse["total_cycles"] < broadcast["total_cycles"]
    )


def _measure_e17(spec: ExperimentSpec) -> Measurement:
    """§9 SMP ext.: TLB-shootdown strategy cross-product at 2 CPUs."""
    return _measure_smp(spec, n_cpus=2)


def _measure_e18(spec: ExperimentSpec) -> Measurement:
    """§9 SMP ext.: TLB-shootdown strategy cross-product at 4 CPUs."""
    return _measure_smp(spec, n_cpus=4)


def _measure_e19(spec: ExperimentSpec) -> Measurement:
    """§9 SMP ext.: TLB-shootdown strategy cross-product at 8 CPUs."""
    return _measure_smp(spec, n_cpus=8)


# ---------------------------------------------------------------------------
# E20/E21 — request-level telemetry: the open-loop service workload
# ---------------------------------------------------------------------------

#: The service experiments drive the §7 pressure request-side: the
#: widest zombie-accumulation contrast is the naive SMP port against
#: the full lazy mmap-reuse stack.
_SERVICE_STRATEGIES = DEFAULT_STRATEGIES
_SERVICE_CPUS = 2
_SERVICE_REQUESTS = 120
_SERVICE_SEED = 20
#: Fixed operating point for E20: around the 2-CPU capacity knee,
#: where queueing is real but the system still keeps up.
_SERVICE_LOAD = 6_000


def _service_variants() -> Tuple[ConfigVariant, ...]:
    return tuple(
        ConfigVariant(
            name, M604_185,
            KernelConfig.optimized().with_changes(
                shootdown_strategy=strategy
            ),
        )
        for name, strategy in (
            (name, next(s for s in ShootdownStrategy if s.value == name))
            for name in _SERVICE_STRATEGIES
        )
    )


def _measure_e20(spec: ExperimentSpec) -> Measurement:
    """Open-loop SLO cross-product at a fixed offered load.

    Every variant serves the same seeded arrival schedule; latency is
    measured from the *scheduled* arrival (coordinated-omission-free),
    so a saturated variant's backlog lands in its percentiles.
    """
    rows: Dict[str, Dict[str, object]] = {}
    for variant in spec.variants:
        sim = boot(variant.machine, variant.config, n_cpus=_SERVICE_CPUS)
        run = service_run(
            sim, _SERVICE_REQUESTS, _SERVICE_LOAD, seed=_SERVICE_SEED
        )
        rows[variant.label] = run.summary()
    lines = [
        f"{spec.id} — open-loop service SLO at {_SERVICE_LOAD:,} req/s "
        f"({_SERVICE_CPUS} CPUs, {_SERVICE_REQUESTS} requests, "
        f"seed {_SERVICE_SEED})",
        f"  {'strategy':<12}{'thr/s':>9}{'p50 us':>9}{'p99 us':>10}"
        f"{'p99.9 us':>10}{'zpeak':>7}{'zcorr':>8}",
    ]
    for label, row in rows.items():
        slo = row["slo"]  # type: ignore[index]
        lines.append(
            f"  {label:<12}{row['throughput_per_s']:>9,.0f}"
            f"{slo['latency_p50_us']:>9,.1f}"  # type: ignore[index]
            f"{slo['latency_p99_us']:>10,.1f}"  # type: ignore[index]
            f"{slo['latency_p999_us']:>10,.1f}"  # type: ignore[index]
            f"{row['zombie_peak']:>7}"
            f"{row['zombie_queue_correlation']:>+8.3f}"
        )
    lines.append(
        "  expectation: every request completes; the open-loop tail is "
        "ordered p50 <= p90 <= p99 <= p99.9; per-request exec churn "
        "accrues zombies under every lazy strategy, most under "
        "mmap_reuse (munmap flushes skipped)"
    )
    measured: Dict[str, object] = {
        "offered_per_s": _SERVICE_LOAD,
        "requests": _SERVICE_REQUESTS,
        "n_cpus": _SERVICE_CPUS,
        "rows": rows,
    }
    return Measurement(measured, lines)


def _shape_e20(m: Dict[str, object]) -> bool:
    rows = m["rows"]  # type: ignore[index]
    ordered = True
    completed = True
    zombies = True
    for row in rows.values():  # type: ignore[union-attr]
        slo = row["slo"]
        ordered = ordered and (
            slo["latency_p50_us"] <= slo["latency_p90_us"]
            <= slo["latency_p99_us"] <= slo["latency_p999_us"]
        )
        completed = completed and row["completed"] == row["requests"]
        zombies = zombies and row["zombie_peak"] > 0
    broadcast = rows["broadcast"]  # type: ignore[index]
    reuse = rows["mmap_reuse"]  # type: ignore[index]
    return bool(
        ordered and completed and zombies
        # mmap_reuse skips munmap flushes, so its zombie backlog is
        # strictly deeper than the eagerly-flushing baseline's.
        and reuse["zombie_peak"] > broadcast["zombie_peak"]
    )


def _measure_e21(spec: ExperimentSpec) -> Measurement:
    """Capacity sweep: offered load ladder per flush strategy."""
    from repro.analysis.capacity import render_capacity

    doc = capacity_sweep(
        loads=DEFAULT_LOADS, strategies=_SERVICE_STRATEGIES,
        n_cpus=_SERVICE_CPUS, requests=_SERVICE_REQUESTS,
        seed=_SERVICE_SEED,
    )
    knees = {
        curve["strategy"]: knee_load(curve) for curve in doc["curves"]
    }
    measured: Dict[str, object] = {
        "capacity": doc,
        "loads": list(DEFAULT_LOADS),
        "knees": knees,
    }
    lines = [f"{spec.id} — throughput-vs-p99 capacity curves"]
    lines.extend(
        "  " + line for line in render_capacity(doc).rstrip("\n").split("\n")
    )
    return Measurement(measured, lines)


def _shape_e21(m: Dict[str, object]) -> bool:
    doc = m["capacity"]  # type: ignore[index]
    curves = {
        curve["strategy"]: curve["points"]
        for curve in doc["curves"]  # type: ignore[index]
    }
    ok = len(curves) >= 2
    for points in curves.values():
        base, top = points[0], points[-1]
        ok = ok and (
            # The knee: the tail explodes across the ladder ...
            top["latency_p99_us"] > 3 * base["latency_p99_us"]
            # ... because the top rung is past capacity ...
            and top["throughput_per_s"] < top["offered_per_s"]
            # ... and the zombie backlog deepens with the load.
            and top["zombie_peak"] > base["zombie_peak"]
        )
    broadcast = curves["broadcast"]
    reuse = curves["mmap_reuse"]
    return bool(
        ok and reuse[-1]["zombie_peak"] > broadcast[-1]["zombie_peak"]
    )


#: The service experiments extend the paper: §7's zombie economics
#: measured request-side, with open-loop (coordinated-omission-free)
#: SLO percentiles as the observable.
SERVICE_PAPER: Dict[str, object] = {
    "open_loop": True,
    "p99_knee_exists": True,
    "zombie_pressure_grows_with_load": True,
}

SERVICE_NOTES = (
    "Extension beyond the paper: request-level telemetry over the SMP "
    "executive. Latency clocks start at the seeded *scheduled* arrival "
    "(open-loop), so saturation shows up in the percentiles instead of "
    "stretching the schedule (coordinated omission)."
)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

#: The SMP experiments extend the paper (its §9 footnote defers SMP);
#: reference expectations come from the shootdown literature instead:
#: targeted IPIs track the mm's CPU mask, lazy deferral cuts IPIs
#: without losing coherence (arXiv 2401.15558), and pooling munmapped
#: regions for intra-process reuse skips the flush outright
#: (arXiv 2409.10946).
SMP_PAPER: Dict[str, object] = {
    "targeted_ipis": 0,
    "lazy_defers": True,
    "mmap_reuse_skips_flushes": True,
}

SMP_NOTES = (
    "Extension beyond the paper: the original defers SMP (§9 footnote). "
    "Fixed task affinity makes targeted shootdown IPI-free; the lazy "
    "and mmap-reuse strategies model arXiv 2401.15558 / 2409.10946."
)

#: Experiment id -> spec, as indexed in DESIGN.md.  Keep this a dict
#: literal: the ``experiment-registry`` lint pass reads its keys.
SPECS: Dict[str, ExperimentSpec] = {
    "E1": ExperimentSpec(
        id="E1",
        title="Figure 1: translation datapath",
        section="Figure 1",
        variants=(ConfigVariant("fig1", M604_185, KernelConfig.optimized()),),
        workload=_measure_e1,
        shape=_shape_e1,
        paper={"va_bits": 52, "segment_bits": 4, "page_index_bits": 16},
    ),
    "E2": ExperimentSpec(
        id="E2",
        title="§5.1 BAT kernel mapping",
        section="§5.1",
        variants=_e2_variants(),
        workload=_measure_e2,
        shape=_shape_e2,
        paper={
            "tlb_ratio": 0.90,
            "htab_ratio": 0.81,
            "kernel_tlb_slots_after": 4,
            "wall_ratio": 0.80,
        },
        notes=(
            "Wall-clock effect under-reproduces: our scaled compile is "
            "cache-bound where the original was reload-bound, so removing "
            "kernel TLB misses moves wall time less than the paper's 20%."
        ),
    ),
    "E3": ExperimentSpec(
        id="E3",
        title="§5.2 hash-table occupancy vs VSID scatter",
        section="§5.2",
        variants=_e3_variants(),
        workload=_measure_e3,
        shape=_shape_e3,
        paper={"naive": 0.37, "scattered": 0.57, "kernel_removed": 0.75},
    ),
    "E4": ExperimentSpec(
        id="E4",
        title="§6.1 fast reload handlers",
        section="§6.1",
        variants=_e4_variants(),
        workload=_measure_e4,
        shape=_shape_e4,
        paper={
            "ctxsw_ratio": 0.67,
            "pipe_latency_ratio": 0.85,
            "compile_ratio": 0.85,
        },
    ),
    "E5": ExperimentSpec(
        id="E5",
        title="Table 1: direct TLB reloads on the 603",
        section="Table 1",
        variants=_e5_variants(),
        workload=_measure_e5,
        shape=_shape_e5,
        paper=PAPER_TABLE1,
        notes=(
            "The in-noise per-cell differences between htab and no-htab "
            "(pipe bw +-6%, reread +-9%) do not fully reproduce; the "
            "headline (603@180 keeps pace with the 604s; process start "
            "improves without the hash table) does."
        ),
    ),
    "E6": ExperimentSpec(
        id="E6",
        title="Table 2: lazy VSID flushing",
        section="Table 2",
        variants=_e6_variants(),
        workload=_measure_e6,
        shape=_shape_e6,
        paper={"mmap_improvement_603": 79.0, "mmap_improvement_604": 82.8},
    ),
    "E7": ExperimentSpec(
        id="E7",
        title="§7 zombie reclaim in the idle task",
        section="§7",
        variants=_e7_variants(),
        workload=_measure_e7,
        shape=_shape_e7,
        paper={
            "evict_ratio_before": 0.90,
            "evict_ratio_after": 0.30,
            "hit_rate_before": 0.85,
            "hit_rate_after": 0.98,
        },
        notes=(
            "Live-entry growth (600-700 -> 1400-2200) reproduces only "
            "partially: with round-robin bucket replacement, evicts land "
            "mostly on zombies, so live occupancy is less sensitive here "
            "than on the real system."
        ),
    ),
    "E8": ExperimentSpec(
        id="E8",
        title="§7 range-flush cutoff sweep",
        section="§7",
        variants=_e8_variants(),
        workload=_measure_e8,
        shape=_shape_e8,
        paper={"improvement": 80.0},
    ),
    "E9": ExperimentSpec(
        id="E9",
        title="§8 page-table cache pollution",
        section="§8",
        variants=_e9_variants(),
        workload=_measure_e9,
        shape=_shape_e9,
        paper={"worst_case_refs": 34, "new_cache_lines_per_refill": 18},
    ),
    "E10": ExperimentSpec(
        id="E10",
        title="§9 idle-task page clearing",
        section="§9",
        variants=_e10_variants(),
        workload=_measure_e10,
        shape=_shape_e10,
        paper={
            "pollution_cached_ratio": 2.0,
            "pollution_uncached_nolist_ratio": 1.0,
            "compile_uncached_list_ratio": 0.9,
        },
        notes=(
            "The cached-clearing penalty reproduces in direction (slower) "
            "but not the full 2x: the tag-only cache model has no bus "
            "contention, which the paper's SMP footnote identifies as the "
            "other half of the cost."
        ),
    ),
    "E11": ExperimentSpec(
        id="E11",
        title="Table 3: OS comparison",
        section="Table 3",
        variants=(),
        workload=_measure_e11,
        shape=_shape_e11,
        paper={},  # filled lazily by paper_for() (imports oscompare)
    ),
    "E12": ExperimentSpec(
        id="E12",
        title="§5.1 I/O-space BAT mapping",
        section="§5.1",
        variants=_e12_variants(),
        workload=_measure_e12,
        shape=_shape_e12,
        paper={"cycle_ratio": 1.0},
    ),
    "E13": ExperimentSpec(
        id="E13",
        title="§6.2 no-htab compile",
        section="§6.2",
        variants=_e13_variants(),
        workload=_measure_e13,
        shape=_shape_e13,
        paper={"compile_ratio": 0.95},
    ),
    "E14": ExperimentSpec(
        id="E14",
        title="§10.1 uncached idle task ablation",
        section="§10.1",
        variants=_e14_variants(),
        workload=_measure_e14,
        shape=_shape_e14,
        paper={"busy_ratio": 1.0},
    ),
    "E15": ExperimentSpec(
        id="E15",
        title="§10.2 cache preloads ablation",
        section="§10.2",
        variants=_e15_variants(),
        workload=_measure_e15,
        shape=_shape_e15,
        paper={"ctxsw8_ratio": 1.0},
    ),
    "E16": ExperimentSpec(
        id="E16",
        title="§7 rejected on-demand scavenge ablation",
        section="§7",
        variants=_e16_variants(),
        workload=_measure_e16,
        shape=_shape_e16,
        paper={"inconsistency": "worst-case latency spikes"},
        seed=11,
    ),
    "E17": ExperimentSpec(
        id="E17",
        title="SMP shootdown strategies, 2 CPUs",
        section="§9 SMP footnote (ext.)",
        variants=_smp_variants(),
        workload=_measure_e17,
        shape=_shape_smp,
        paper=SMP_PAPER,
        notes=SMP_NOTES,
    ),
    "E18": ExperimentSpec(
        id="E18",
        title="SMP shootdown strategies, 4 CPUs",
        section="§9 SMP footnote (ext.)",
        variants=_smp_variants(),
        workload=_measure_e18,
        shape=_shape_smp,
        paper=SMP_PAPER,
        notes=SMP_NOTES,
    ),
    "E19": ExperimentSpec(
        id="E19",
        title="SMP shootdown strategies, 8 CPUs",
        section="§9 SMP footnote (ext.)",
        variants=_smp_variants(),
        workload=_measure_e19,
        shape=_shape_smp,
        paper=SMP_PAPER,
        notes=SMP_NOTES,
    ),
    "E20": ExperimentSpec(
        id="E20",
        title="Open-loop service SLO at the knee",
        section="§7 zombie pressure (ext.)",
        variants=_service_variants(),
        workload=_measure_e20,
        shape=_shape_e20,
        paper=SERVICE_PAPER,
        notes=SERVICE_NOTES,
    ),
    "E21": ExperimentSpec(
        id="E21",
        title="Capacity curves: throughput vs p99",
        section="§7 zombie pressure (ext.)",
        variants=_service_variants(),
        workload=_measure_e21,
        shape=_shape_e21,
        paper=SERVICE_PAPER,
        notes=SERVICE_NOTES,
    ),
}


def paper_for(spec: ExperimentSpec) -> Dict[str, object]:
    """A spec's paper-reference values (E11's import oscompare lazily)."""
    if spec.id == "E11" and not spec.paper:
        return _paper_table3()
    return spec.paper


def sorted_ids(ids: Optional[Sequence[str]] = None) -> List[str]:
    """Registry IDs in numeric order (E1, E2, ..., E16)."""
    return sorted(ids if ids is not None else SPECS, key=experiment_sort_key)


# ---------------------------------------------------------------------------
# Matrix sweeps (repro run --matrix NAME)
# ---------------------------------------------------------------------------


def _run_vsid_matrix() -> str:
    from repro.analysis.sweep import ascii_bars, sweep_vsid_scatter

    constants = (2048, 256, 16, 13, 37, 111)
    points = sweep_vsid_scatter(constants, processes=16, pages_per_process=240)
    lines = [
        "matrix vsid-scatter — §5.2 hash-table health vs scatter constant",
        f"  {'constant':<10}{'pow2':<6}{'occupancy':>10}{'evicts':>8}"
        f"{'hot-spot':>10}{'entropy':>9}",
    ]
    for point in points:
        lines.append(
            f"  {point.constant:<10}{'yes' if point.is_power_of_two else 'no':<6}"
            f"{point.occupancy:9.1%}{point.evicts:8d}"
            f"{point.hot_spot_ratio:10.1f}{point.entropy:9.2f}"
        )
    lines.append("")
    lines.append(
        ascii_bars(
            [str(point.constant) for point in points],
            [point.occupancy for point in points],
        )
    )
    return "\n".join(lines)


def _run_cutoff_matrix() -> str:
    from repro.analysis.sweep import ascii_bars, sweep_flush_cutoff

    cutoffs: Tuple[Optional[int], ...] = (None, 5, 10, 20, 50, 200, 10**6)
    points = sweep_flush_cutoff(cutoffs)
    labels = [
        "search" if point.cutoff is None else f"cutoff {point.cutoff}"
        for point in points
    ]
    lines = [
        "matrix flush-cutoff — §7 lat_mmap (4MB) vs range-flush cutoff",
    ]
    lines.append(
        ascii_bars(labels, [point.mmap_us for point in points])
    )
    lines.append("  (us per mmap+munmap pair; lower is better)")
    return "\n".join(lines)


#: Named config-matrix sweeps: the paper's tuning instruments as
#: first-class engine citizens.
MATRICES: Dict[str, MatrixSpec] = {
    "vsid-scatter": MatrixSpec(
        id="vsid-scatter",
        title="§5.2 VSID scatter constant sweep",
        axis="vsid_scatter_constant",
        run=_run_vsid_matrix,
    ),
    "flush-cutoff": MatrixSpec(
        id="flush-cutoff",
        title="§7 range-flush cutoff sweep",
        axis="range_flush_cutoff",
        run=_run_cutoff_matrix,
    ),
}
