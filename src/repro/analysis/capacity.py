"""Capacity sweep: offered load vs SLO tail, per flush strategy.

The service workload (:mod:`repro.workloads.service`) measures one
operating point — an offered arrival rate against a kernel
configuration.  This module steps the offered load across a monotone
ladder for each flush/shootdown strategy and collects the classic
capacity curve: throughput saturating at the knee while the open-loop
p99 explodes, with the hash table's zombie occupancy climbing
alongside (the paper's §7 pressure, measured request-side).

The sweep document is deterministic: every point is a seeded run on a
freshly booted simulator, and the renderer is a pure function of the
document — ``repro capacity`` twice produces byte-identical output.

``CAPACITY_POINT_FIELDS`` is a literal tuple on purpose: the
observatory-closure lint pass reads it from the AST and checks that
every dashboard column (``CAPACITY_COLUMNS`` of ``obs/report.py``) is
a field the sweep actually records.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.kernel.config import KernelConfig, ShootdownStrategy
from repro.params import M604_185, MachineSpec
from repro.sim.simulator import boot
from repro.workloads.service import service_run

#: Schema tag of the capacity document (bump on field changes).
CAPACITY_SCHEMA = 1

#: Every field a capacity point records.  Literal tuple — the
#: observatory-closure pass checks the dashboard's CAPACITY_COLUMNS
#: against it.
CAPACITY_POINT_FIELDS = (
    "offered_per_s",
    "throughput_per_s",
    "completed",
    "latency_p50_us",
    "latency_p90_us",
    "latency_p99_us",
    "latency_p999_us",
    "queue_wait_p99_us",
    "queue_depth_max",
    "mmu_cycles_per_request",
    "zombie_peak",
    "zombie_mean",
    "zombie_queue_correlation",
)

#: Default load ladder (requests per simulated second): spans the
#: 2-CPU knee — sub-saturated, around the knee, past saturation.
DEFAULT_LOADS = (2_000, 6_000, 12_000)

#: Default strategy pair: the naive SMP port against the full lazy
#: mmap-reuse stack — the widest zombie-pressure contrast.
DEFAULT_STRATEGIES = ("broadcast", "mmap_reuse")


def strategy_variant(name: str) -> ShootdownStrategy:
    """Resolve a strategy by its config value name (e.g. ``broadcast``)."""
    for strategy in ShootdownStrategy:
        if strategy.value == name:
            return strategy
    known = ", ".join(s.value for s in ShootdownStrategy)
    raise ValueError(f"unknown strategy {name!r}; expected one of {known}")


def capacity_point(summary: Dict[str, Any]) -> Dict[str, Any]:
    """One sweep point from a service-run summary (fields pinned)."""
    slo = summary["slo"]
    point: Dict[str, Any] = {}
    for field in CAPACITY_POINT_FIELDS:
        if field in summary:
            point[field] = summary[field]
        else:
            point[field] = slo[field]
    return point


def capacity_sweep(
    loads: Sequence[float] = DEFAULT_LOADS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    spec: MachineSpec = M604_185,
    n_cpus: int = 2,
    requests: int = 120,
    seed: int = 20,
    schedule: str = "exponential",
    workers_per_cpu: int = 3,
) -> Dict[str, Any]:
    """Run the sweep and return the capacity document.

    One freshly booted simulator per (strategy, load) point — points
    are independent, so the curve shape is the system's, not an
    artifact of shared warm state.
    """
    ordered_loads = list(loads)
    if ordered_loads != sorted(ordered_loads):
        raise ValueError(f"loads must be monotone ascending: {loads}")
    if len(set(ordered_loads)) != len(ordered_loads):
        raise ValueError(f"loads must be distinct: {loads}")
    curves: List[Dict[str, Any]] = []
    for name in strategies:
        strategy = strategy_variant(name)
        config = KernelConfig.optimized().with_changes(
            shootdown_strategy=strategy
        )
        points: List[Dict[str, Any]] = []
        for load in ordered_loads:
            sim = boot(spec, config, n_cpus=n_cpus)
            run = service_run(
                sim, requests, load, schedule=schedule, seed=seed,
                workers_per_cpu=workers_per_cpu,
            )
            points.append(capacity_point(run.summary()))
        curves.append({"strategy": name, "points": points})
    return {
        "schema": CAPACITY_SCHEMA,
        "machine": spec.name,
        "n_cpus": n_cpus,
        "requests": requests,
        "seed": seed,
        "schedule": schedule,
        "workers_per_cpu": workers_per_cpu,
        "loads": ordered_loads,
        "curves": curves,
    }


def validate_capacity_doc(doc: Dict[str, Any]) -> Dict[str, int]:
    """Check a capacity document is well-formed and monotone.

    Raises :class:`ValueError` on the first problem; returns
    ``{"curves": n, "points": n}``.
    """
    if not isinstance(doc, dict) or doc.get("schema") != CAPACITY_SCHEMA:
        raise ValueError(
            f"not a capacity doc (schema {CAPACITY_SCHEMA} expected): "
            f"{doc.get('schema') if isinstance(doc, dict) else doc!r}"
        )
    loads = doc.get("loads")
    if not isinstance(loads, list) or not loads:
        raise ValueError("capacity doc needs a non-empty 'loads' ladder")
    if loads != sorted(loads) or len(set(loads)) != len(loads):
        raise ValueError(f"capacity loads must be monotone ascending: {loads}")
    curves = doc.get("curves")
    if not isinstance(curves, list) or not curves:
        raise ValueError("capacity doc needs a non-empty 'curves' list")
    counts = {"curves": 0, "points": 0}
    for curve in curves:
        strategy = curve.get("strategy")
        points = curve.get("points")
        if not isinstance(strategy, str) or not isinstance(points, list):
            raise ValueError(f"malformed curve: {curve!r}")
        if len(points) != len(loads):
            raise ValueError(
                f"curve {strategy!r} has {len(points)} points for "
                f"{len(loads)} loads"
            )
        for index, point in enumerate(points):
            for field in CAPACITY_POINT_FIELDS:
                if field not in point:
                    raise ValueError(
                        f"curve {strategy!r} point {index} is missing "
                        f"field {field!r}"
                    )
            if point["offered_per_s"] != loads[index]:
                raise ValueError(
                    f"curve {strategy!r} point {index} offered load "
                    f"{point['offered_per_s']} != ladder {loads[index]}"
                )
            counts["points"] += 1
        counts["curves"] += 1
    return counts


def knee_load(curve: Dict[str, Any],
              factor: float = 3.0) -> Optional[float]:
    """The first offered load whose p99 exceeds ``factor`` x the base.

    The "knee" of the capacity curve, extracted as data: the lowest
    rung of the ladder is taken as the uncongested baseline; the knee
    is where the open-loop p99 has left it behind.  ``None`` when the
    curve never crosses (the ladder stayed under capacity).
    """
    points = curve.get("points", [])
    if not points:
        return None
    base = points[0]["latency_p99_us"] or 1.0
    for point in points[1:]:
        if point["latency_p99_us"] > base * factor:
            return point["offered_per_s"]
    return None


_TABLE_COLUMNS = (
    ("offered_per_s", "offered/s", ",.0f"),
    ("throughput_per_s", "thr/s", ",.1f"),
    ("latency_p50_us", "p50 us", ",.1f"),
    ("latency_p99_us", "p99 us", ",.1f"),
    ("latency_p999_us", "p99.9 us", ",.1f"),
    ("queue_depth_max", "qmax", ",d"),
    ("zombie_peak", "zpeak", ",d"),
    ("zombie_queue_correlation", "zcorr", "+.3f"),
)


def render_capacity(doc: Dict[str, Any]) -> str:
    """The sweep as an aligned text table (printed by ``repro capacity``).

    Pure function of the document — byte-deterministic.
    """
    lines = [
        f"capacity sweep: {doc['machine']}, {doc['n_cpus']} CPU(s), "
        f"{doc['requests']} requests/point, {doc['schedule']} arrivals, "
        f"seed {doc['seed']}"
    ]
    header = ["strategy"] + [title for _field, title, _fmt in _TABLE_COLUMNS]
    rows: List[List[str]] = [header]
    for curve in doc["curves"]:
        for point in curve["points"]:
            row = [curve["strategy"]]
            for field, _title, fmt in _TABLE_COLUMNS:
                row.append(format(point[field], fmt))
            rows.append(row)
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header))
    ]
    for number, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [
            cell.rjust(width)
            for cell, width in zip(row[1:], widths[1:])
        ]
        lines.append("  ".join(cells).rstrip())
        if number == 0:
            lines.append("  ".join("-" * width for width in widths))
    for curve in doc["curves"]:
        knee = knee_load(curve)
        where = f"{knee:,.0f} req/s" if knee is not None else "not reached"
        lines.append(f"p99 knee [{curve['strategy']}]: {where}")
    return "\n".join(lines) + "\n"
