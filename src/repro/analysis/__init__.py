"""Experiment registry and paper-style table rendering."""

from repro.analysis.tables import format_table, format_lmbench_rows

__all__ = ["format_lmbench_rows", "format_table"]
