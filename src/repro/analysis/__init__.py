"""Experiment registry and paper-style table rendering."""

from repro.analysis.tables import format_table, format_lmbench_rows
from repro.analysis import experiments

__all__ = ["experiments", "format_lmbench_rows", "format_table"]
