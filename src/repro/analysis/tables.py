"""Render results the way the paper's tables print them."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Plain-text table with aligned columns."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(value.ljust(widths[i]) for i, value in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_lmbench_rows(results, metrics: Optional[List[str]] = None) -> str:
    """Render LmbenchResult objects as a Table 1/2-style grid.

    ``results`` is a list of :class:`~repro.workloads.lmbench.LmbenchResult`;
    columns are configurations (like the paper), rows are points.
    """
    metrics = metrics or [
        ("process start (ms)", "process_start_ms"),
        ("ctxsw (us)", "ctxsw_us"),
        ("pipe lat. (us)", "pipe_latency_us"),
        ("pipe bw (MB/s)", "pipe_bw_mb_s"),
        ("file reread (MB/s)", "file_reread_mb_s"),
        ("mmap lat. (us)", "mmap_latency_us"),
        ("null syscall (us)", "null_syscall_us"),
    ]
    headers = ["point"] + [result.label for result in results]
    rows = []
    for label, attr in metrics:
        values = [getattr(result, attr) for result in results]
        if all(value is None for value in values):
            continue
        rows.append([label] + values)
    return format_table(headers, rows)


def ratio_line(name: str, measured: float, paper: float, unit: str = "") -> str:
    """One 'measured vs paper' comparison line for experiment output."""
    if paper:
        relation = f"{measured / paper:5.2f}x of paper"
    else:
        relation = "n/a"
    return f"  {name:<34} measured {measured:10.2f}{unit:<6} paper {paper:10.2f}{unit:<6} ({relation})"
