"""The experiment engine: one execution path for every spec.

Every consumer of the registry — the CLI, the benchmark suite,
``repro check``, the obs session — funnels through :func:`execute`:
look the spec up, run its workload over its machine/config matrix,
JSON-round-trip the measured numbers, apply the shape predicate, and
return an :class:`ExperimentResult`.  The round-trip is deliberate:
a freshly-computed result and one loaded from the on-disk cache are
the *same value*, so callers never need to care which they got.

:func:`run_ids` adds the scheduling: a multiprocessing fan-out
(``--jobs N``) whose workers are deterministic (the experiments seed
their own RNGs; no wall-clock feeds the measured numbers) and whose
results merge back in the caller's id order — so parallel output is
byte-identical to serial output.  Wall-clock timings are collected
per experiment for the BENCH artifact but are explicitly outside the
determinism guarantee.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis import specs
from repro.analysis.cache import ResultCache, spec_fingerprint
from repro.analysis.spec import ExperimentResult, ExperimentSpec
from repro.obs import analytics
from repro.obs.metrics import json_safe


def spec_for(experiment_id: str) -> ExperimentSpec:
    """Look up a spec by id (case-insensitive); KeyError if unknown."""
    key = experiment_id.upper()
    if key not in specs.SPECS:
        raise KeyError(experiment_id)
    return specs.SPECS[key]


def execute(
    spec: ExperimentSpec,
    params: Optional[Dict[str, object]] = None,
    derive: bool = False,
) -> ExperimentResult:
    """Run one spec's workload and shape-check the measured numbers.

    No caching: this is the pure path the sanitizer runner and the obs
    session wrap with their own hooks.  ``derive=True`` runs the
    workload under the flight recorder and attaches the observatory's
    ``derived`` block to the result; it is a no-op when a global
    recorder is already active (the outer caller owns the handles then,
    e.g. the benchmark suite or ``repro trace``).  Deriving never
    changes the measured numbers — the recorder is zero-perturbation.
    """
    if derive and not obs.global_obs_active():
        return _execute_derived(spec, params)
    measurement = spec.workload(spec, **(params or {}))
    # Round-trip through JSON so cached and fresh results are equal as
    # values (and so a shape predicate can never depend on a type that
    # would not survive the cache).
    measured = json.loads(json.dumps(json_safe(measurement.measured)))
    paper = json.loads(json.dumps(json_safe(specs.paper_for(spec))))
    return ExperimentResult(
        experiment=spec.id,
        title=spec.title,
        measured=measured,
        paper=paper,
        shape_holds=bool(spec.shape(measured)),
        report="\n".join(measurement.lines),
        notes=spec.notes,
    )


def _execute_derived(
    spec: ExperimentSpec, params: Optional[Dict[str, object]]
) -> ExperimentResult:
    """Execute under the flight recorder and attach the derived block.

    Tracing is on with monitor republication off (counter totals are
    derived from the monitor snapshots instead, without paying an event
    per counted miss), sampling on the coarse derive grid.
    """
    obs.enable_global_observability(
        trace=True,
        profile=True,
        sample_every_us=analytics.DERIVE_SAMPLE_US,
        trace_config=obs.TraceConfig(monitor_events=frozenset()),
    )
    try:
        result = execute(spec, params)
        observed = obs.drain_global_observed()
    finally:
        obs.disable_global_observability()
    # The same round-trip the measured dict gets: a derived block loaded
    # from the cache must be the same value as a fresh one.
    result.derived = json.loads(
        json.dumps(json_safe(analytics.derive(observed)))
    )
    return result


# ---------------------------------------------------------------------------
# Cached execution
# ---------------------------------------------------------------------------


def run_cached(
    spec: ExperimentSpec,
    params: Optional[Dict[str, object]] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    rerun: bool = False,
    derive: bool = True,
) -> Tuple[ExperimentResult, float, bool]:
    """Execute one spec through the cache.

    Returns ``(result, wall_seconds, cache_hit)``.  ``use_cache=False``
    disables the cache entirely (no read, no write); ``rerun=True``
    forces execution but still refreshes the stored entry.  Results
    carry the observatory's ``derived`` block by default, so every
    cached entry and every BENCH record has one.
    """
    fingerprint = ""
    if use_cache:
        cache = cache if cache is not None else ResultCache()
        fingerprint = spec_fingerprint(spec, params)
        if not rerun:
            cached = cache.load(spec.id, fingerprint)
            if cached is not None:
                return cached, 0.0, True
    # Engine timing is bookkeeping for the BENCH artifact, not part of
    # any measured value (those come from the simulated clock).
    start = time.monotonic()  # repro-lint: disable=wall-clock -- wall time feeds the timings artifact, never a measured number
    result = execute(spec, params, derive=derive)
    wall = time.monotonic() - start  # repro-lint: disable=wall-clock -- wall time feeds the timings artifact, never a measured number
    if use_cache and cache is not None:
        cache.store(spec.id, fingerprint, result)
    return result, wall, False


# ---------------------------------------------------------------------------
# The fan-out runner
# ---------------------------------------------------------------------------


@dataclass
class EngineRun:
    """Outcome of one :func:`run_ids` invocation."""

    #: Results in the caller's id order (parallel or not).
    results: List[ExperimentResult] = field(default_factory=list)
    #: Wall seconds per experiment (0.0 on a cache hit).  Explicitly
    #: outside the determinism guarantee.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Whether each experiment came from the cache.
    cache_hits: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(result.shape_holds for result in self.results)

    def failed_ids(self) -> List[str]:
        return [r.experiment for r in self.results if not r.shape_holds]


def _run_one_job(job: Tuple[str, bool, bool]) -> Tuple[str, ExperimentResult, float, bool]:
    """Worker body: must be module-level so the pool can pickle it."""
    experiment_id, use_cache, rerun = job
    spec = specs.SPECS[experiment_id]
    result, wall, hit = run_cached(spec, use_cache=use_cache, rerun=rerun)
    return experiment_id, result, wall, hit


def run_ids(
    ids: Sequence[str],
    jobs: int = 1,
    use_cache: bool = True,
    rerun: bool = False,
    progress: Optional[Callable[[str, bool], None]] = None,
) -> EngineRun:
    """Run experiments, optionally fanned out across processes.

    ``ids`` must be upper-case registry keys; results come back in the
    same order regardless of ``jobs``, so serial and parallel runs
    print identically.  ``progress(experiment_id, cache_hit)`` fires as
    each experiment completes (completion order under parallelism).
    """
    for key in ids:
        if key not in specs.SPECS:
            raise KeyError(key)
    run = EngineRun()
    jobs = max(1, min(jobs, len(ids))) if ids else 1
    if jobs == 1:
        outcomes = map(
            _run_one_job, [(key, use_cache, rerun) for key in ids]
        )
        by_id: Dict[str, ExperimentResult] = {}
        for key, result, wall, hit in outcomes:
            by_id[key] = result
            run.timings[key] = wall
            run.cache_hits[key] = hit
            if progress is not None:
                progress(key, hit)
    else:
        context = multiprocessing.get_context()
        by_id = {}
        with context.Pool(processes=jobs) as pool:
            for key, result, wall, hit in pool.imap_unordered(
                _run_one_job, [(key, use_cache, rerun) for key in ids]
            ):
                by_id[key] = result
                run.timings[key] = wall
                run.cache_hits[key] = hit
                if progress is not None:
                    progress(key, hit)
    run.results = [by_id[key] for key in ids]
    return run


# ---------------------------------------------------------------------------
# BENCH records (the deterministic half of BENCH_results.json)
# ---------------------------------------------------------------------------


def result_record(result: ExperimentResult) -> Dict[str, object]:
    """A deterministic BENCH record built from the result alone.

    A thin wrapper over the one record builder
    (:func:`repro.obs.metrics.experiment_record`): with no live
    recorder handles, total cycles / machines / attribution are lifted
    from the result's ``derived`` block, which the engine always
    attaches — so cold-cache and warm-cache runs emit byte-identical
    records with the same field set as the benchmark suite's.
    """
    from repro.obs.metrics import experiment_record

    return experiment_record(
        result, spec=specs.SPECS[result.experiment]
    )
