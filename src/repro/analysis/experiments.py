"""The per-experiment reproduction registry (DESIGN.md's E1..E16).

Each ``run_eN`` function reproduces one table, figure, or in-text result
from the paper and returns an :class:`ExperimentResult` carrying the
measured values, the paper's values, and a human-readable report.  The
benchmark suite under ``benchmarks/`` is a thin layer over these
runners; the ``examples/`` scripts call them too.

Shape checks, not absolute checks: the substrate is a simulator, so each
experiment defines ``shape_holds`` as "the paper's qualitative claim is
true of the measured numbers" (who wins, roughly by how much, where the
crossover sits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.hw.addr import decompose_ea, make_virtual_address
from repro.hw.hashtable import primary_hash, secondary_hash
from repro.kernel.config import IdlePageClearPolicy, KernelConfig, VsidPolicy
from repro.params import (
    HTAB_PTE_SLOTS,
    M603_133,
    M603_180,
    M604_133,
    M604_185,
    M604_200,
    MachineSpec,
    PAGE_SIZE,
)
from repro.perf.histogram import occupancy_histogram
from repro.sim.simulator import Simulator, boot
from repro.sim.trace import WorkingSetTrace
from repro.workloads.kbuild import CACHE_RESIDENT, kernel_compile
from repro.workloads.lmbench import (
    LmbenchResult,
    context_switch,
    lmbench_suite,
    mmap_latency,
    pipe_latency,
)
from repro.workloads.mixes import multiprogram_mix


@dataclass
class ExperimentResult:
    """Outcome of one reproduced experiment."""

    experiment: str
    title: str
    measured: Dict[str, object]
    paper: Dict[str, object]
    shape_holds: bool
    report: str
    notes: str = ""


def _report(lines: List[str]) -> str:
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# E1 — Figure 1: the translation datapath
# ---------------------------------------------------------------------------


def run_e1(ea: int = 0x30012ABC, vsid: int = 0x123456) -> ExperimentResult:
    """Figure 1: decompose one EA through the architected datapath."""
    fields = decompose_ea(ea)
    va = make_virtual_address(vsid, ea)
    h1 = primary_hash(vsid, fields.page_index)
    h2 = secondary_hash(vsid, fields.page_index)
    sim = boot(M604_185, KernelConfig.optimized())
    task = sim.kernel.spawn("fig1", data_pages=8)
    sim.kernel.switch_to(task)
    result = sim.machine.translate(0x10000000)
    lines = [
        "Figure 1 — PowerPC hash-table translation",
        f"  EA        0x{ea:08x}",
        f"  SR#       {fields.segment} (4 bits)",
        f"  page idx  0x{fields.page_index:04x} (16 bits)",
        f"  offset    0x{fields.offset:03x} (12 bits)",
        f"  VSID      0x{vsid:06x} (24 bits)",
        f"  VA        0x{va.value:013x} (52 bits)",
        f"  hash1     0x{h1:05x}   hash2 0x{h2:05x}",
        f"  live translation path: {result.path}, PA 0x{result.pa:08x}",
    ]
    measured = {
        "segment": fields.segment,
        "page_index": fields.page_index,
        "offset": fields.offset,
        "va_bits": va.value.bit_length(),
        "live_path": result.path,
    }
    shape = (
        fields.segment == (ea >> 28)
        and va.value.bit_length() <= 52
        and h2 == (~h1) & ((1 << 19) - 1)
    )
    return ExperimentResult(
        experiment="E1",
        title="Figure 1: translation datapath",
        measured=measured,
        paper={"va_bits": 52, "segment_bits": 4, "page_index_bits": 16},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E2 — §5.1: BAT-mapping the kernel
# ---------------------------------------------------------------------------


def run_e2(units: int = 6, spec: MachineSpec = M604_185) -> ExperimentResult:
    """§5.1: kernel BAT map vs PTE-mapped kernel on the compile."""
    unopt = KernelConfig.unoptimized()
    with_bat = unopt.with_changes(bat_kernel_map=True)
    base = kernel_compile(boot(spec, unopt), units=units, label="no BAT")
    bat = kernel_compile(boot(spec, with_bat), units=units, label="BAT")
    tlb_ratio = bat.tlb_misses / max(base.tlb_misses, 1)
    htab_ratio = bat.htab_misses / max(base.htab_misses, 1)
    wall_ratio = bat.wall_ms / base.wall_ms
    lines = [
        "E2 — §5.1 BAT-mapping the kernel (kernel compile)",
        f"  TLB misses      {base.tlb_misses} -> {bat.tlb_misses}"
        f"  (ratio {tlb_ratio:.2f}; paper 219M -> 197M = 0.90)",
        f"  htab misses     {base.htab_misses} -> {bat.htab_misses}"
        f"  (ratio {htab_ratio:.2f}; paper 1M -> 813k = 0.81)",
        f"  kernel TLB slots (high water) {base.kernel_tlb_entries_high_water}"
        f" -> {bat.kernel_tlb_entries_high_water} (paper: ~1/3 of TLB -> <=4)",
        f"  wall            {base.wall_ms:.1f} -> {bat.wall_ms:.1f} ms"
        f"  (ratio {wall_ratio:.2f}; paper 10min -> 8min = 0.80)",
        f"  [trace scale 1/{base.trace_scale}: full-compile equivalents "
        f"{base.full_scale_tlb_misses / 1e6:.0f}M -> "
        f"{bat.full_scale_tlb_misses / 1e6:.0f}M TLB misses, "
        f"{base.full_scale_wall_minutes:.1f} -> "
        f"{bat.full_scale_wall_minutes:.1f} min]",
    ]
    shape = (
        bat.tlb_misses < base.tlb_misses
        and bat.htab_misses <= base.htab_misses
        and bat.kernel_tlb_entries_high_water <= 4
        and wall_ratio <= 1.02
    )
    return ExperimentResult(
        experiment="E2",
        title="§5.1 BAT kernel mapping",
        measured={
            "tlb_ratio": tlb_ratio,
            "htab_ratio": htab_ratio,
            "kernel_tlb_slots_after": bat.kernel_tlb_entries_high_water,
            "wall_ratio": wall_ratio,
        },
        paper={
            "tlb_ratio": 0.90,
            "htab_ratio": 0.81,
            "kernel_tlb_slots_after": 4,
            "wall_ratio": 0.80,
        },
        shape_holds=shape,
        report=_report(lines),
        notes=(
            "Wall-clock effect under-reproduces: our scaled compile is "
            "cache-bound where the original was reload-bound, so removing "
            "kernel TLB misses moves wall time less than the paper's 20%."
        ),
    )


# ---------------------------------------------------------------------------
# E3 — §5.2: VSID scatter and hash-table occupancy
# ---------------------------------------------------------------------------


def _fill_htab(sim: Simulator, processes: int, pages: int) -> None:
    """Fault ``pages`` pages in each of ``processes`` address spaces.

    Most of each address space is a *shared* library mapping — the same
    physical frames mapped by every process under its own VSIDs, which
    is how a 32 MB machine generates far more PTEs than it has frames
    (each mapping needs its own hash-table entry).
    """
    kernel = sim.kernel
    anon_pages = max(pages // 6, 1)
    shared_pages = pages - anon_pages
    kernel.fs.create("shlib.so", shared_pages * PAGE_SIZE, wired=True)
    kernel.fs.prefault("shlib.so")
    for index in range(processes):
        task = kernel.spawn(
            f"fill{index}", text_pages=8, data_pages=anon_pages + 2
        )
        kernel.scheduler.enqueue(task)
        kernel.switch_to(task)
        for page in range(anon_pages):
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
        lib = kernel.sys_mmap(
            task, shared_pages * PAGE_SIZE, file="shlib.so", writable=False
        )
        for page in range(shared_pages):
            kernel.user_access(task, lib + page * PAGE_SIZE, 1, False)


def run_e3(
    processes: int = 40,
    pages_per_process: int = 500,
    spec: MachineSpec = M604_185,
) -> ExperimentResult:
    """§5.2: hash occupancy for power-of-two vs scattered VSIDs vs BAT."""
    variants = [
        # (label, scatter constant, BAT kernel map).  Power-of-two
        # multipliers alias in the low hash bits; the larger the power,
        # the fewer distinct buckets the processes can reach.
        ("pid<<11 (pow2: all pids share buckets)", 2048, False),
        ("pid<<4  (pow2, milder aliasing)", 16, False),
        ("pid*37  (non-pow2 scatter)", 37, False),
        ("pid*37 + kernel via BAT", 37, True),
    ]
    rows = []
    occupancies = {}
    for label, constant, bat in variants:
        config = KernelConfig(
            vsid_policy=VsidPolicy.PID_SCATTER,
            vsid_scatter_constant=constant,
            bat_kernel_map=bat,
        )
        sim = boot(spec, config)
        _fill_htab(sim, processes, pages_per_process)
        htab = sim.machine.htab
        histogram = occupancy_histogram(htab)
        occupancy = htab.occupancy()
        occupancies[label] = occupancy
        rows.append(
            f"  {label:<40} occupancy {occupancy:5.1%}"
            f"  evicts {htab.evicts:6d}"
            f"  hot-spot ratio {histogram.hot_spot_ratio():4.1f}"
            f"  entropy {histogram.entropy_efficiency():4.2f}"
        )
    values = list(occupancies.values())
    lines = [
        "E3 — §5.2 VSID scatter tuning "
        f"({processes} procs x {pages_per_process} pages, "
        f"{processes * pages_per_process} inserts into {HTAB_PTE_SLOTS} slots)",
        *rows,
        "  paper: 37% (naive) -> 57% (scattered) -> 75% (kernel PTEs removed)",
    ]
    # The ladder: each scatter improvement raises occupancy; the BAT
    # variant must not regress it.
    shape = (
        values[0] < values[1] < values[2]
        and values[3] >= values[2] - 0.02
    )
    return ExperimentResult(
        experiment="E3",
        title="§5.2 hash-table occupancy vs VSID scatter",
        measured={label: occ for label, occ in occupancies.items()},
        paper={"naive": 0.37, "scattered": 0.57, "kernel_removed": 0.75},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E4 — §6.1: fast (assembly) miss handlers
# ---------------------------------------------------------------------------


def run_e4(spec: MachineSpec = M604_133) -> ExperimentResult:
    """§6.1: C handlers vs hand-scheduled assembly handlers."""
    slow = KernelConfig.unoptimized()
    fast = slow.with_changes(fast_handlers=True, optimized_entry=True)
    ctx_slow = context_switch(boot(spec, slow))
    ctx_fast = context_switch(boot(spec, fast))
    lat_slow = pipe_latency(boot(spec, slow))
    lat_fast = pipe_latency(boot(spec, fast))
    wall_slow = kernel_compile(boot(spec, slow), units=4, label="C").wall_ms
    wall_fast = kernel_compile(boot(spec, fast), units=4, label="asm").wall_ms
    ctx_ratio = ctx_fast / ctx_slow
    lat_ratio = lat_fast / lat_slow
    wall_ratio = wall_fast / wall_slow
    lines = [
        "E4 — §6.1 fast TLB reload handlers",
        f"  context switch {ctx_slow:6.1f} -> {ctx_fast:6.1f} us"
        f"  (ratio {ctx_ratio:.2f}; paper -33% = 0.67)",
        f"  pipe latency   {lat_slow:6.1f} -> {lat_fast:6.1f} us"
        f"  (ratio {lat_ratio:.2f}; paper -15% = 0.85)",
        f"  compile wall   {wall_slow:6.1f} -> {wall_fast:6.1f} ms"
        f"  (ratio {wall_ratio:.2f}; paper ~-15% = 0.85)",
    ]
    shape = ctx_ratio < 0.8 and lat_ratio < 0.92 and wall_ratio < 1.0
    return ExperimentResult(
        experiment="E4",
        title="§6.1 fast reload handlers",
        measured={
            "ctxsw_ratio": ctx_ratio,
            "pipe_latency_ratio": lat_ratio,
            "compile_ratio": wall_ratio,
        },
        paper={
            "ctxsw_ratio": 0.67,
            "pipe_latency_ratio": 0.85,
            "compile_ratio": 0.85,
        },
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E5 — Table 1: removing the hash table on the 603
# ---------------------------------------------------------------------------

#: The paper's Table 1 cells.
PAPER_TABLE1 = {
    "603 180MHz (htab)": dict(pstart=1.8, ctxsw=4, pipelat=17, pipebw=69, reread=33),
    "603 180MHz (no htab)": dict(pstart=1.7, ctxsw=3, pipelat=19, pipebw=73, reread=36),
    "604 185MHz": dict(pstart=1.6, ctxsw=4, pipelat=21, pipebw=88, reread=39),
    "604 200MHz": dict(pstart=1.6, ctxsw=4, pipelat=20, pipebw=92, reread=41),
}


def run_e5() -> ExperimentResult:
    """Table 1: LmBench summary for direct (no-htab) TLB reloads."""
    opt = KernelConfig.optimized()
    configs = [
        ("603 180MHz (htab)", M603_180, opt.with_changes(use_htab_on_603=True)),
        ("603 180MHz (no htab)", M603_180, opt),
        ("604 185MHz", M604_185, opt),
        ("604 200MHz", M604_200, opt),
    ]
    results: List[LmbenchResult] = []
    for label, spec, config in configs:
        results.append(
            lmbench_suite(
                lambda spec=spec, config=config: boot(spec, config),
                label=label,
                points=(
                    "ctxsw",
                    "pipe_latency",
                    "pipe_bw",
                    "file_reread",
                    "process_start",
                ),
            )
        )
    lines = ["E5 — Table 1: LmBench summary (htab vs no-htab on the 603)"]
    for result in results:
        paper = PAPER_TABLE1[result.label]
        lines.append(
            f"  {result.label:<22}"
            f" pstart {result.process_start_ms:5.2f} ms ({paper['pstart']})"
            f"  ctxsw {result.ctxsw_us:5.1f} us ({paper['ctxsw']})"
            f"  pipe lat {result.pipe_latency_us:5.1f} us ({paper['pipelat']})"
            f"  pipe bw {result.pipe_bw_mb_s:5.1f} ({paper['pipebw']})"
            f"  reread {result.file_reread_mb_s:5.1f} ({paper['reread']})"
        )
    lines.append("  (parenthesized: paper values)")
    by_label = {result.label: result for result in results}
    # The paper's headline: the 180MHz 603 keeps pace with the 604s.
    m603 = by_label["603 180MHz (no htab)"]
    m604 = by_label["604 185MHz"]
    shape = (
        m603.pipe_bw_mb_s >= 0.75 * m604.pipe_bw_mb_s
        and m603.ctxsw_us <= 1.6 * m604.ctxsw_us
        and by_label["603 180MHz (no htab)"].process_start_ms
        <= by_label["603 180MHz (htab)"].process_start_ms
    )
    return ExperimentResult(
        experiment="E5",
        title="Table 1: direct TLB reloads on the 603",
        measured={
            label: {
                "pstart_ms": result.process_start_ms,
                "ctxsw_us": result.ctxsw_us,
                "pipe_lat_us": result.pipe_latency_us,
                "pipe_bw": result.pipe_bw_mb_s,
                "reread": result.file_reread_mb_s,
            }
            for label, result in by_label.items()
        },
        paper=PAPER_TABLE1,
        shape_holds=shape,
        report=_report(lines),
        notes=(
            "The in-noise per-cell differences between htab and no-htab "
            "(pipe bw +-6%, reread +-9%) do not fully reproduce; the "
            "headline (603@180 keeps pace with the 604s; process start "
            "improves without the hash table) does."
        ),
    )


# ---------------------------------------------------------------------------
# E6 — Table 2: lazy flushes + tunable range flushing
# ---------------------------------------------------------------------------

PAPER_TABLE2 = {
    "603 133MHz": dict(mmap=3240, ctxsw=6, pipelat=34, pipebw=52, reread=26),
    "603 133MHz (lazy)": dict(mmap=41, ctxsw=6, pipelat=28, pipebw=57, reread=32),
    "604 185MHz": dict(mmap=2733, ctxsw=4, pipelat=22, pipebw=90, reread=38),
    "604 185MHz (tune)": dict(mmap=33, ctxsw=4, pipelat=21, pipebw=94, reread=41),
}


def run_e6() -> ExperimentResult:
    """Table 2: search-flushing vs lazy VSID flushing."""
    # The non-lazy columns are otherwise-optimized kernels that still
    # search-flush; the lazy columns add the VSID bump + cutoff.
    lazy = KernelConfig.optimized()
    search = lazy.with_changes(
        lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
    )
    configs = [
        ("603 133MHz", M603_133, search.with_changes(use_htab_on_603=True)),
        ("603 133MHz (lazy)", M603_133, lazy.with_changes(use_htab_on_603=True)),
        ("604 185MHz", M604_185, search),
        ("604 185MHz (tune)", M604_185, lazy),
    ]
    results = []
    for label, spec, config in configs:
        results.append(
            lmbench_suite(
                lambda spec=spec, config=config: boot(spec, config),
                label=label,
                points=("mmap_latency", "ctxsw", "pipe_latency", "pipe_bw",
                        "file_reread"),
            )
        )
    lines = ["E6 — Table 2: LmBench summary for tunable TLB range flushing"]
    for result in results:
        paper = PAPER_TABLE2[result.label]
        lines.append(
            f"  {result.label:<20}"
            f" mmap {result.mmap_latency_us:7.1f} us ({paper['mmap']})"
            f"  ctxsw {result.ctxsw_us:5.1f} ({paper['ctxsw']})"
            f"  pipe lat {result.pipe_latency_us:5.1f} ({paper['pipelat']})"
            f"  pipe bw {result.pipe_bw_mb_s:5.1f} ({paper['pipebw']})"
            f"  reread {result.file_reread_mb_s:5.1f} ({paper['reread']})"
        )
    lines.append("  (parenthesized: paper values)")
    by_label = {result.label: result for result in results}
    improvement_603 = (
        by_label["603 133MHz"].mmap_latency_us
        / by_label["603 133MHz (lazy)"].mmap_latency_us
    )
    improvement_604 = (
        by_label["604 185MHz"].mmap_latency_us
        / by_label["604 185MHz (tune)"].mmap_latency_us
    )
    lines.append(
        f"  mmap improvement: 603 {improvement_603:.0f}x (paper 79x), "
        f"604 {improvement_604:.0f}x (paper 83x)"
    )
    shape = improvement_603 > 40 and improvement_604 > 40
    return ExperimentResult(
        experiment="E6",
        title="Table 2: lazy VSID flushing",
        measured={
            "mmap_improvement_603": improvement_603,
            "mmap_improvement_604": improvement_604,
            "rows": {
                label: {
                    "mmap_us": result.mmap_latency_us,
                    "pipe_bw": result.pipe_bw_mb_s,
                }
                for label, result in by_label.items()
            },
        },
        paper={"mmap_improvement_603": 79.0, "mmap_improvement_604": 82.8},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E7 — §7: idle-task zombie reclaim
# ---------------------------------------------------------------------------


def run_e7(
    spec: MachineSpec = M604_185,
    rounds: int = 150,
    churn_every: int = 6,
    think_cycles: int = 120000,
) -> ExperimentResult:
    """§7: zombie PTE reclaim in the idle task."""
    base = KernelConfig.optimized().with_changes(idle_zombie_reclaim=False)
    no_reclaim = multiprogram_mix(
        boot(spec, base),
        rounds=rounds, churn_every=churn_every, think_cycles=think_cycles,
        label="no reclaim",
    )
    reclaim = multiprogram_mix(
        boot(spec, KernelConfig.optimized()),
        rounds=rounds, churn_every=churn_every, think_cycles=think_cycles,
        label="idle reclaim",
    )
    lines = [
        "E7 — §7 idle-task zombie reclaim (multiprogramming mix)",
        f"  {'':<14}{'valid':>8}{'live':>8}{'zombie':>8}"
        f"{'evict/reload':>14}{'htab hit':>10}",
        f"  {'no reclaim':<14}{no_reclaim.valid_entries:8.0f}"
        f"{no_reclaim.live_entries:8.0f}{no_reclaim.zombie_entries:8.0f}"
        f"{no_reclaim.evict_ratio:14.2f}{no_reclaim.htab_hit_rate:10.2f}",
        f"  {'reclaim':<14}{reclaim.valid_entries:8.0f}"
        f"{reclaim.live_entries:8.0f}{reclaim.zombie_entries:8.0f}"
        f"{reclaim.evict_ratio:14.2f}{reclaim.htab_hit_rate:10.2f}",
        f"  zombies reclaimed: {reclaim.zombies_reclaimed}",
        "  paper: table fills with zombies; evict ratio >90% -> ~30%;",
        "  occupancy 600-700 -> 1400-2200 of 16384; hit rate 85% -> 98%",
    ]
    shape = (
        no_reclaim.valid_entries > 0.85 * HTAB_PTE_SLOTS
        and reclaim.valid_entries < 0.6 * no_reclaim.valid_entries
        and reclaim.evict_ratio < 0.5 * max(no_reclaim.evict_ratio, 1e-9)
        and reclaim.zombies_reclaimed > 0
    )
    return ExperimentResult(
        experiment="E7",
        title="§7 zombie reclaim in the idle task",
        measured={
            "evict_ratio_before": no_reclaim.evict_ratio,
            "evict_ratio_after": reclaim.evict_ratio,
            "valid_before": no_reclaim.valid_entries,
            "valid_after": reclaim.valid_entries,
            "hit_rate_before": no_reclaim.htab_hit_rate,
            "hit_rate_after": reclaim.htab_hit_rate,
            "zombies_reclaimed": reclaim.zombies_reclaimed,
        },
        paper={
            "evict_ratio_before": 0.90,
            "evict_ratio_after": 0.30,
            "hit_rate_before": 0.85,
            "hit_rate_after": 0.98,
        },
        shape_holds=shape,
        report=_report(lines),
        notes=(
            "Live-entry growth (600-700 -> 1400-2200) reproduces only "
            "partially: with round-robin bucket replacement, evicts land "
            "mostly on zombies, so live occupancy is less sensitive here "
            "than on the real system."
        ),
    )


# ---------------------------------------------------------------------------
# E8 — §7: the range-flush cutoff
# ---------------------------------------------------------------------------


def _e8_workload(sim: Simulator, region_pages: int, iterations: int = 8):
    """Map a region, touch part of it, unmap — measuring the pair cost."""
    kernel = sim.kernel
    executive = sim.executive
    kernel.fs.create(f"map{region_pages}.dat", region_pages * PAGE_SIZE)
    touched = min(region_pages, 16)

    def factory(task):
        def body(t):
            for index in range(iterations + 1):
                if index == 1:
                    yield ("mark", "e8_start")
                addr = yield ("mmap", region_pages * PAGE_SIZE,
                              f"map{region_pages}.dat", None)
                for page in range(touched):
                    step = max(region_pages // touched, 1)
                    yield ("touch", addr + page * step * PAGE_SIZE, 4, False)
                yield ("munmap", addr, region_pages * PAGE_SIZE)
            yield ("mark", "e8_end")

        return body(task)

    executive.spawn("e8", factory)
    sim.run()
    delta = executive.mark_deltas("e8_start", "e8_end")[0]
    return (
        sim.cycles_to_us(delta / iterations),
        sim.machine.monitor.total_tlb_misses(),
    )


def run_e8(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§7: sweep the range-flush cutoff; mmap latency and TLB misses."""
    large_pages = 1024  # the lat_mmap-style 4 MB region
    small_pages = 8  # under the tuned cutoff
    sweep = []
    for cutoff, label in (
        (None, "search (no lazy)"),
        (5, "cutoff 5"),
        (20, "cutoff 20 (tuned)"),
        (10**6, "cutoff inf"),
    ):
        if cutoff is None:
            config = KernelConfig.optimized().with_changes(
                lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
            )
        else:
            config = KernelConfig.optimized().with_changes(
                range_flush_cutoff=cutoff
            )
        # Pure lat_mmap (untouched region: the paper's 80x number) plus
        # a touched variant so the TLB-miss comparison is meaningful.
        pure_us = mmap_latency(boot(spec, config))
        large_us, large_misses = _e8_workload(boot(spec, config), large_pages)
        small_us, _ = _e8_workload(boot(spec, config), small_pages)
        sweep.append((label, cutoff, pure_us, large_us, small_us, large_misses))
    lines = [
        "E8 — §7 tunable range-flush cutoff",
        f"  {'':<20}{'lat_mmap 4MB':>14}{'4MB touched':>14}"
        f"{'32KB touched':>14}{'TLB misses':>12}",
    ]
    for label, _cutoff, pure_us, large_us, small_us, misses in sweep:
        lines.append(
            f"  {label:<20}{pure_us:11.1f} us{large_us:11.1f} us"
            f"{small_us:11.1f} us{misses:12d}"
        )
    lines.append(
        "  paper: cutoff 20 pages -> mmap latency 80x better, "
        "'at no cost to the TLB hit rate'"
    )
    by_label = {entry[0]: entry for entry in sweep}
    search = by_label["search (no lazy)"]
    tuned = by_label["cutoff 20 (tuned)"]
    infinite = by_label["cutoff inf"]
    improvement = search[2] / tuned[2]
    shape = (
        improvement > 40  # the 80x-class improvement on big ranges
        and infinite[2] > 5 * tuned[2]  # no cutoff -> back to search cost
        and tuned[5] <= search[5] * 1.10  # no extra TLB misses
        and tuned[4] <= search[4] * 1.25  # small ranges stay cheap
    )
    return ExperimentResult(
        experiment="E8",
        title="§7 range-flush cutoff sweep",
        measured={
            "search_us": search[2],
            "cutoff20_us": tuned[2],
            "improvement": improvement,
            "misses_search": search[5],
            "misses_cutoff20": tuned[5],
            "small_region_search_us": search[4],
            "small_region_cutoff20_us": tuned[4],
        },
        paper={"improvement": 80.0},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E9 — §8: cache misuse on page tables
# ---------------------------------------------------------------------------


def run_e9(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§8: memory accesses and cache lines created by the refill path."""
    # Part 1: count the architected worst case on one cold miss.
    config = KernelConfig.optimized()
    sim = boot(spec, config)
    kernel = sim.kernel
    task = kernel.spawn("e9", data_pages=4)
    kernel.switch_to(task)
    # Fault the page in (so the Linux PTE exists), then flush everything
    # so the next access walks hash table (miss) + PTE tree + reinsert.
    kernel.user_access(task, 0x10000000, 1, True)
    sim.machine.htab.invalidate_all()
    sim.machine.invalidate_tlbs()
    # Cold caches: the paper's counting assumes the PTEG and PTE-tree
    # lines are not already resident.
    sim.machine.dcache.flush_all()
    sim.machine.l2.flush_all()
    misses_before = sim.machine.dcache.stats.misses
    kernel.user_access(task, 0x10000000, 1, False)
    # Each data-cache miss on the refill path creates one new line.
    new_lines = sim.machine.dcache.stats.misses - misses_before
    # Architected accounting (§8): 16 (search+miss) + 2..3 (tree) + up
    # to 16 (insert scan) = ~34 memory accesses.
    search_refs = 16  # both PTEGs probed on the miss
    tree_refs = 3
    insert_refs = 16  # worst case scan of both PTEGs
    worst_case = search_refs + tree_refs + insert_refs

    # Part 2: cached vs uncached page tables on a TLB-heavy workload.
    def storm(cache_ptes: bool):
        sim = boot(spec, config.with_changes(cache_page_tables=cache_ptes))
        kernel = sim.kernel
        task = kernel.spawn("storm", data_pages=402)
        kernel.switch_to(task)
        trace = WorkingSetTrace(
            0x01000000, 12, 0x10000000, 400, hot_fraction=1.0,
            lines_per_visit=4, seed=3,
        )
        mark = sim.machine.clock.snapshot()
        for visit in trace.visits(12000):
            kernel.user_access(task, visit.ea, visit.lines, visit.write,
                               visit.kind, first_line=visit.first_line)
        cycles = sim.machine.clock.since(mark)
        return cycles, sim.machine.dcache.stats.misses

    cached_cycles, cached_misses = storm(True)
    uncached_cycles, uncached_misses = storm(False)
    lines = [
        "E9 — §8 cache misuse on page tables",
        f"  cold refill path: {worst_case} architected memory accesses "
        "(16 search + 3 tree + 16 insert; paper: 34)",
        f"  new data-cache lines created by one refill: {new_lines} "
        "(paper: up to 18)",
        f"  TLB-storm with cached page tables:   {cached_cycles} cycles, "
        f"{cached_misses} dcache misses",
        f"  TLB-storm with uncached page tables: {uncached_cycles} cycles, "
        f"{uncached_misses} dcache misses",
        f"  dcache misses saved by uncaching page tables: "
        f"{cached_misses - uncached_misses}",
    ]
    shape = new_lines <= 18 and uncached_misses < cached_misses
    return ExperimentResult(
        experiment="E9",
        title="§8 page-table cache pollution",
        measured={
            "worst_case_refs": worst_case,
            "new_cache_lines_per_refill": new_lines,
            "storm_cached_misses": cached_misses,
            "storm_uncached_misses": uncached_misses,
        },
        paper={"worst_case_refs": 34, "new_cache_lines_per_refill": 18},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E10 — §9: idle-task page clearing
# ---------------------------------------------------------------------------


def _pollution_run(spec: MachineSpec, policy: IdlePageClearPolicy) -> int:
    """Sub-experiment A: steady working set + idle clearing windows."""
    config = KernelConfig.optimized().with_changes(
        idle_page_clear=policy, idle_zombie_reclaim=False
    )
    sim = boot(spec, config)
    executive = sim.executive

    def factory(task):
        def body(t):
            trace = WorkingSetTrace(
                0x01000000, 12, 0x10000000, 360, hot_fraction=0.9,
                lines_per_visit=32, drift=0.0, seed=7,
            )
            # Warm up to steady state, then measure rounds of work with
            # think-time (idle windows) between them.
            for _ in range(3):
                yield ("work", trace.visit_list(500))
            yield ("mark", "poll_start")
            for _ in range(10):
                yield ("sleep", 900000)
                yield ("work", trace.visit_list(500))
            yield ("mark", "poll_end")

        return body(task)

    executive.spawn("steady", factory, data_pages=364)
    sim.run()
    total = executive.mark_deltas("poll_start", "poll_end")[0]
    # The sleeps themselves are constant; compare busy time.
    return total - 10 * 900000


def run_e10(spec: MachineSpec = M604_185, units: int = 5) -> ExperimentResult:
    """§9: the three page-clearing variants vs the baseline."""
    # Sub-experiment A: pollution (low allocation, idle-heavy).
    busy = {}
    for policy in (
        IdlePageClearPolicy.OFF,
        IdlePageClearPolicy.CACHED_LIST,
        IdlePageClearPolicy.UNCACHED_NO_LIST,
        IdlePageClearPolicy.UNCACHED_LIST,
    ):
        busy[policy] = _pollution_run(spec, policy)
    # Sub-experiment B: allocation-heavy compile.
    walls = {}
    for policy in busy:
        config = KernelConfig.optimized().with_changes(idle_page_clear=policy)
        result = kernel_compile(
            boot(spec, config), units=units, profile=CACHE_RESIDENT,
            label=policy.value,
        )
        walls[policy] = result.wall_ms
    off = IdlePageClearPolicy.OFF
    lines = [
        "E10 — §9 idle-task page clearing",
        "  A: steady working set, idle windows (pollution regime); "
        "busy cycles relative to OFF:",
    ]
    for policy, value in busy.items():
        lines.append(
            f"    {policy.value:<18} {value:10d} ({value / busy[off]:.3f}x)"
        )
    lines.append(
        "  B: allocation-heavy compile (pre-clear benefit regime); "
        "wall ms relative to OFF:"
    )
    for policy, value in walls.items():
        lines.append(
            f"    {policy.value:<18} {value:10.1f} ({value / walls[off]:.3f}x)"
        )
    lines.append(
        "  paper: cached+list ~2x slower; uncached w/o list: no change; "
        "uncached+list: faster"
    )
    pollution_cached = busy[IdlePageClearPolicy.CACHED_LIST] / busy[off]
    pollution_nolist = busy[IdlePageClearPolicy.UNCACHED_NO_LIST] / busy[off]
    benefit_list = walls[IdlePageClearPolicy.UNCACHED_LIST] / walls[off]
    benefit_nolist = walls[IdlePageClearPolicy.UNCACHED_NO_LIST] / walls[off]
    shape = (
        pollution_cached > 1.05  # cached clearing hurts
        and 0.97 < pollution_nolist < 1.03  # uncached w/o list: no change
        and benefit_list < 0.97  # uncached + list wins
        and 0.97 < benefit_nolist < 1.03
    )
    return ExperimentResult(
        experiment="E10",
        title="§9 idle-task page clearing",
        measured={
            "pollution_cached_ratio": pollution_cached,
            "pollution_uncached_nolist_ratio": pollution_nolist,
            "compile_uncached_list_ratio": benefit_list,
            "compile_uncached_nolist_ratio": benefit_nolist,
            "compile_cached_ratio": walls[IdlePageClearPolicy.CACHED_LIST]
            / walls[off],
        },
        paper={
            "pollution_cached_ratio": 2.0,
            "pollution_uncached_nolist_ratio": 1.0,
            "compile_uncached_list_ratio": 0.9,
        },
        shape_holds=shape,
        report=_report(lines),
        notes=(
            "The cached-clearing penalty reproduces in direction (slower) "
            "but not the full 2x: the tag-only cache model has no bus "
            "contention, which the paper's SMP footnote identifies as the "
            "other half of the cost."
        ),
    )


# ---------------------------------------------------------------------------
# E11 — Table 3: OS comparison
# ---------------------------------------------------------------------------


def run_e11() -> ExperimentResult:
    """Table 3: Linux/PPC vs unoptimized vs Rhapsody vs MkLinux vs AIX."""
    from repro.oscompare.runner import PAPER_TABLE3, run_table3

    rows = run_table3()
    lines = ["E11 — Table 3: LmBench summary for Linux/PPC and other OSes"]
    for row in rows:
        paper = PAPER_TABLE3[row.os]
        lines.append(
            f"  {row.os:<22} null {row.null_syscall_us:5.1f} ({paper[0]:2d})"
            f"  ctxsw {row.ctxsw_us:5.1f} ({paper[1]:2d})"
            f"  pipe lat {row.pipe_latency_us:6.1f} ({paper[2]:3d})"
            f"  pipe bw {row.pipe_bw_mb_s:5.1f} ({paper[3]:2d})"
        )
    lines.append("  (parenthesized: paper values; all on a 133MHz 604)")
    by_os = {row.os: row for row in rows}
    linux = by_os["Linux/PPC"]
    shape = all(
        linux.null_syscall_us < other.null_syscall_us
        and linux.ctxsw_us < other.ctxsw_us
        and linux.pipe_latency_us < other.pipe_latency_us
        and linux.pipe_bw_mb_s > other.pipe_bw_mb_s
        for os_name, other in by_os.items()
        if os_name != "Linux/PPC"
    )
    return ExperimentResult(
        experiment="E11",
        title="Table 3: OS comparison",
        measured={
            row.os: {
                "null_us": row.null_syscall_us,
                "ctxsw_us": row.ctxsw_us,
                "pipe_lat_us": row.pipe_latency_us,
                "pipe_bw": row.pipe_bw_mb_s,
            }
            for row in rows
        },
        paper={os_name: dict(zip(("null_us", "ctxsw_us", "pipe_lat_us",
                                  "pipe_bw"), values))
               for os_name, values in PAPER_TABLE3.items()},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E12 — §5.1: BAT-mapping the I/O space
# ---------------------------------------------------------------------------


def run_e12(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§5.1: I/O-space BATs 'did not improve these measures significantly'."""
    from repro.kernel.kernel import IO_BASE_EA

    def run(io_bat: bool):
        config = KernelConfig.optimized().with_changes(bat_io_map=io_bat)
        sim = boot(spec, config)
        kernel = sim.kernel
        task = kernel.spawn("xserver", data_pages=66)
        kernel.switch_to(task)
        trace = WorkingSetTrace(
            0x01000000, 12, 0x10000000, 64, hot_fraction=0.5, seed=11,
        )
        mark = sim.machine.clock.snapshot()
        visits = list(trace.visits(4000))
        for index, visit in enumerate(visits):
            kernel.user_access(task, visit.ea, visit.lines, visit.write,
                               visit.kind, first_line=visit.first_line)
            if index % 40 == 39:
                # The occasional framebuffer poke: rare enough that its
                # TLB entries "are quickly displaced by other mappings".
                kernel.machine.access_page(
                    IO_BASE_EA + (index % 64) * PAGE_SIZE, 4, write=True
                )
        cycles = sim.machine.clock.since(mark)
        return cycles, sim.machine.monitor.total_tlb_misses()

    base_cycles, base_misses = run(False)
    bat_cycles, bat_misses = run(True)
    ratio = bat_cycles / base_cycles
    lines = [
        "E12 — §5.1 BAT-mapping the I/O space",
        f"  without I/O BAT: {base_cycles} cycles, {base_misses} TLB misses",
        f"  with I/O BAT:    {bat_cycles} cycles, {bat_misses} TLB misses",
        f"  cycle ratio {ratio:.3f} "
        "(paper: 'did not improve these measures significantly')",
    ]
    shape = 0.95 < ratio < 1.02
    return ExperimentResult(
        experiment="E12",
        title="§5.1 I/O-space BAT mapping",
        measured={"cycle_ratio": ratio, "tlb_misses_saved":
                  base_misses - bat_misses},
        paper={"cycle_ratio": 1.0},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E13 — §6.2: removing the hash table (compile -5%)
# ---------------------------------------------------------------------------


def run_e13(units: int = 5) -> ExperimentResult:
    """§6.2: the no-htab 603 compile and the 603-vs-604 headline."""
    opt = KernelConfig.optimized()
    htab = kernel_compile(
        boot(M603_180, opt.with_changes(use_htab_on_603=True)),
        units=units, label="603 htab",
    )
    nohtab = kernel_compile(boot(M603_180, opt), units=units, label="603 no-htab")
    m604 = kernel_compile(boot(M604_200, opt), units=units, label="604 200MHz")
    ratio = nohtab.wall_ms / htab.wall_ms
    vs604 = nohtab.wall_ms / m604.wall_ms
    lines = [
        "E13 — §6.2 removing the hash table on the 603 (kernel compile)",
        f"  603@180 with htab emulation: {htab.wall_ms:8.1f} ms",
        f"  603@180 direct PTE-tree:     {nohtab.wall_ms:8.1f} ms"
        f"  (ratio {ratio:.3f}; paper -5% = 0.95)",
        f"  604@200 (hardware walk):     {m604.wall_ms:8.1f} ms"
        f"  (603 no-htab is {vs604:.2f}x of the 604@200's time)",
    ]
    shape = ratio < 1.0 and vs604 < 1.35
    return ExperimentResult(
        experiment="E13",
        title="§6.2 no-htab compile",
        measured={"compile_ratio": ratio, "vs_604_200": vs604},
        paper={"compile_ratio": 0.95},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E14 — §10.1 ablation: uncached idle task
# ---------------------------------------------------------------------------


def run_e14(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§10.1: run the idle task cache-inhibited (future-work ablation)."""
    normal = _pollution_run_with(
        spec, KernelConfig.optimized().with_changes(
            idle_page_clear=IdlePageClearPolicy.CACHED_LIST,
            idle_zombie_reclaim=True,
        )
    )
    uncached = _pollution_run_with(
        spec, KernelConfig.optimized().with_changes(
            idle_page_clear=IdlePageClearPolicy.CACHED_LIST,
            idle_zombie_reclaim=True,
            idle_uncached=True,
        )
    )
    ratio = uncached / normal
    lines = [
        "E14 — §10.1 ablation: cache-inhibited idle task",
        f"  idle cached:       busy {normal} cycles",
        f"  idle cache-inhibited: busy {uncached} cycles (ratio {ratio:.3f})",
        "  paper (conjecture): uncaching the idle task avoids polluting "
        "the cache",
    ]
    shape = ratio < 1.0
    return ExperimentResult(
        experiment="E14",
        title="§10.1 uncached idle task ablation",
        measured={"busy_ratio": ratio},
        paper={"busy_ratio": 1.0},
        shape_holds=shape,
        report=_report(lines),
    )


def _pollution_run_with(spec: MachineSpec, config: KernelConfig) -> int:
    """E14 helper: the E10-A pollution run under an explicit config."""
    sim = boot(spec, config)
    executive = sim.executive

    def factory(task):
        def body(t):
            trace = WorkingSetTrace(
                0x01000000, 12, 0x10000000, 360, hot_fraction=0.9,
                lines_per_visit=32, drift=0.0, seed=7,
            )
            for _ in range(3):
                yield ("work", trace.visit_list(500))
            yield ("mark", "e14_start")
            for _ in range(10):
                yield ("sleep", 900000)
                yield ("work", trace.visit_list(500))
            yield ("mark", "e14_end")

        return body(task)

    executive.spawn("steady", factory, data_pages=364)
    sim.run()
    total = executive.mark_deltas("e14_start", "e14_end")[0]
    return total - 10 * 900000


# ---------------------------------------------------------------------------
# E15 — §10.2 ablation: cache preloads in the switch path
# ---------------------------------------------------------------------------


def run_e15(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§10.2: dcbt prefetches at context-switch entry (future work).

    The preloads only matter when the user working sets have evicted the
    switch path's data between switches, so the harness thrashes the L1
    before each measured switch — the cache-hostile regime the paper's
    conjecture targets.
    """
    from repro.params import KERNELBASE

    def switch_cost(preload: bool) -> float:
        config = KernelConfig.optimized().with_changes(cache_preloads=preload)
        sim = boot(spec, config)
        kernel = sim.kernel
        first = kernel.spawn("a")
        second = kernel.spawn("b")
        kernel.switch_to(first)
        total = 0
        thrash_base = KERNELBASE + 4 * 1024 * 1024
        for iteration in range(40):
            # A user burst large enough to evict the kernel's switch
            # data from the L1 (but not the L2).
            for page in range(12):
                sim.machine.access_page(
                    thrash_base + page * PAGE_SIZE, lines=128, write=True
                )
            target = second if kernel.current_task is first else first
            start = sim.machine.clock.snapshot()
            kernel.switch_to(target)
            total += sim.machine.clock.since(start)
        return total / 40

    base = switch_cost(False)
    preloaded = switch_cost(True)
    ratio = preloaded / base if base else 1.0
    lines = [
        "E15 — §10.2 ablation: cache preloads in the context-switch path",
        f"  cache-cold switch cost: {base:6.1f} -> {preloaded:6.1f} cycles "
        f"(ratio {ratio:.3f})",
        "  paper (conjecture): 'we can make significant gains with "
        "intelligent use of cache preloads in context switching'",
    ]
    shape = ratio < 0.99
    return ExperimentResult(
        experiment="E15",
        title="§10.2 cache preloads ablation",
        measured={"ctxsw8_ratio": ratio, "base_us": base,
                  "preload_us": preloaded},
        paper={"ctxsw8_ratio": 1.0},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# E16 — §7 ablation: the rejected on-demand zombie scavenge
# ---------------------------------------------------------------------------


def run_e16(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§7's rejected design: scavenge zombies when space runs out.

    The paper: "performance would also be inconsistent if we had to
    occasionally scan the hash table and invalidate zombie PTEs when we
    needed more space".  We measure per-access latency spikes under both
    designs on a zombie-saturated table.
    """

    def latency_profile(config):
        sim = boot(spec, config)
        kernel = sim.kernel
        htab = sim.machine.htab
        task = kernel.spawn("churn", data_pages=120)
        kernel.switch_to(task)
        import random

        rng = random.Random(11)
        pages = list(range(0, 118, 2))
        # Fill the table to the brink with zombie PTEs (context churn),
        # so eviction pressure exists during the measured phase.  Stop at
        # the first evict: under the on-demand design that evict already
        # scavenged, and continuing would just oscillate.
        while (
            htab.valid_entries() < htab.slots - 40 and htab.evicts == 0
        ):
            for page in pages:
                kernel.user_access(
                    task, 0x10000000 + page * PAGE_SIZE, 1, True
                )
            kernel.flush.flush_mm(task.mm)
        # Measured phase: random re-touches; each may trigger a reload,
        # and periodic flushes keep the zombie supply growing.
        samples = []
        for index in range(5000):
            page = pages[rng.randrange(len(pages))]
            start = sim.machine.clock.snapshot()
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, False)
            samples.append(sim.machine.clock.since(start))
            if index % 100 == 99:
                kernel.flush.flush_mm(task.mm)
        samples.sort()
        mean = sum(samples) / len(samples)
        p99 = samples[int(len(samples) * 0.99)]
        worst = samples[-1]
        bursts = sim.machine.monitor.get("scavenge_burst")
        return mean, p99, worst, bursts

    idle_cfg = KernelConfig.optimized()
    demand_cfg = KernelConfig.optimized().with_changes(
        idle_zombie_reclaim=False, on_demand_scavenge=True
    )
    idle_mean, idle_p99, idle_worst, _ = latency_profile(idle_cfg)
    dem_mean, dem_p99, dem_worst, bursts = latency_profile(demand_cfg)
    lines = [
        "E16 — §7 ablation: rejected on-demand zombie scavenging",
        f"  {'':<22}{'mean':>8}{'p99':>8}{'worst':>8}  (cycles/access)",
        f"  {'idle-task reclaim':<22}{idle_mean:8.1f}{idle_p99:8d}"
        f"{idle_worst:8d}",
        f"  {'on-demand scavenge':<22}{dem_mean:8.1f}{dem_p99:8d}"
        f"{dem_worst:8d}   ({bursts} scavenge bursts)",
        "  paper: the on-demand design was rejected because performance "
        "'would be inconsistent'",
    ]
    shape = dem_worst > 3 * idle_worst and bursts > 0
    return ExperimentResult(
        experiment="E16",
        title="§7 rejected on-demand scavenge ablation",
        measured={
            "idle_worst": idle_worst,
            "demand_worst": dem_worst,
            "idle_p99": idle_p99,
            "demand_p99": dem_p99,
            "scavenge_bursts": bursts,
        },
        paper={"inconsistency": "worst-case latency spikes"},
        shape_holds=shape,
        report=_report(lines),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Experiment id -> runner, as indexed in DESIGN.md.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
}


def sorted_ids() -> List[str]:
    """Registry IDs in numeric order (E1, E2, ..., E16)."""
    return sorted(REGISTRY, key=_experiment_sort_key)


def run_all(ids: Optional[List[str]] = None) -> List[ExperimentResult]:
    """Run every experiment (or a subset); returns their results."""
    results = []
    for experiment_id in ids or sorted_ids():
        results.append(REGISTRY[experiment_id]())
    return results


def _experiment_sort_key(experiment_id: str) -> int:
    return int(experiment_id[1:])
