"""The per-experiment reproduction registry (DESIGN.md's E1..E16).

Compatibility surface over the declarative engine.  The experiment
definitions live in :mod:`repro.analysis.specs` (one
:class:`~repro.analysis.spec.ExperimentSpec` per paper result) and run
through :mod:`repro.analysis.engine`; this module keeps the original
``run_eN`` call signatures for tests, examples and older callers.
Each wrapper executes its spec directly (no result cache), exactly
like the imperative runners it replaced.

Shape checks, not absolute checks: the substrate is a simulator, so
each experiment defines ``shape_holds`` as "the paper's qualitative
claim is true of the measured numbers" (who wins, roughly by how much,
where the crossover sits).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.analysis import engine
from repro.analysis.spec import ExperimentResult, ExperimentSpec
from repro.analysis.specs import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    SPECS,
    experiment_sort_key,
)
from repro.params import M604_133, M604_185, MachineSpec

__all__ = [
    "ExperimentResult",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "REGISTRY",
    "run_all",
    "sorted_ids",
] + [f"run_e{n}" for n in range(1, 17)]


def _with_machine(spec: ExperimentSpec, machine: MachineSpec) -> ExperimentSpec:
    """The spec with every variant re-pointed at ``machine``.

    The legacy runners took one ``spec: MachineSpec`` argument that
    applied to every configuration they booted; this reproduces that
    behavior for the (single-machine) experiments that offered it.
    """
    return dataclasses.replace(
        spec,
        variants=tuple(
            dataclasses.replace(variant, machine=machine)
            for variant in spec.variants
        ),
    )


def _run(
    experiment_id: str,
    machine: Optional[MachineSpec] = None,
    **params: object,
) -> ExperimentResult:
    spec = SPECS[experiment_id]
    if machine is not None and machine is not spec.variants[0].machine:
        spec = _with_machine(spec, machine)
    return engine.execute(spec, params or None)


def run_e1(ea: int = 0x30012ABC, vsid: int = 0x123456) -> ExperimentResult:
    """Figure 1: decompose one EA through the architected datapath."""
    return _run("E1", ea=ea, vsid=vsid)


def run_e2(units: int = 6, spec: MachineSpec = M604_185) -> ExperimentResult:
    """§5.1: kernel BAT map vs PTE-mapped kernel on the compile."""
    return _run("E2", machine=spec, units=units)


def run_e3(
    processes: int = 40,
    pages_per_process: int = 500,
    spec: MachineSpec = M604_185,
) -> ExperimentResult:
    """§5.2: hash occupancy for power-of-two vs scattered VSIDs vs BAT."""
    return _run(
        "E3", machine=spec,
        processes=processes, pages_per_process=pages_per_process,
    )


def run_e4(spec: MachineSpec = M604_133) -> ExperimentResult:
    """§6.1: C handlers vs hand-scheduled assembly handlers."""
    return _run("E4", machine=spec)


def run_e5() -> ExperimentResult:
    """Table 1: LmBench summary for direct (no-htab) TLB reloads."""
    return _run("E5")


def run_e6() -> ExperimentResult:
    """Table 2: search-flushing vs lazy VSID flushing."""
    return _run("E6")


def run_e7(
    spec: MachineSpec = M604_185,
    rounds: int = 150,
    churn_every: int = 6,
    think_cycles: int = 120000,
) -> ExperimentResult:
    """§7: zombie PTE reclaim in the idle task."""
    return _run(
        "E7", machine=spec,
        rounds=rounds, churn_every=churn_every, think_cycles=think_cycles,
    )


def run_e8(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§7: sweep the range-flush cutoff; mmap latency and TLB misses."""
    return _run("E8", machine=spec)


def run_e9(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§8: memory accesses and cache lines created by the refill path."""
    return _run("E9", machine=spec)


def run_e10(spec: MachineSpec = M604_185, units: int = 5) -> ExperimentResult:
    """§9: the three page-clearing variants vs the baseline."""
    return _run("E10", machine=spec, units=units)


def run_e11() -> ExperimentResult:
    """Table 3: Linux/PPC vs unoptimized vs Rhapsody vs MkLinux vs AIX."""
    return _run("E11")


def run_e12(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§5.1: I/O-space BATs 'did not improve these measures significantly'."""
    return _run("E12", machine=spec)


def run_e13(units: int = 5) -> ExperimentResult:
    """§6.2: the no-htab 603 compile and the 603-vs-604 headline."""
    return _run("E13", units=units)


def run_e14(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§10.1: run the idle task cache-inhibited (future-work ablation)."""
    return _run("E14", machine=spec)


def run_e15(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§10.2: dcbt prefetches at context-switch entry (future work)."""
    return _run("E15", machine=spec)


def run_e16(spec: MachineSpec = M604_185) -> ExperimentResult:
    """§7's rejected design: scavenge zombies when space runs out."""
    return _run("E16", machine=spec)


#: Experiment id -> runner, as indexed in DESIGN.md.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
}


def sorted_ids() -> List[str]:
    """Registry IDs in numeric order (E1, E2, ..., E16)."""
    return sorted(REGISTRY, key=experiment_sort_key)


def run_all(ids: Optional[List[str]] = None) -> List[ExperimentResult]:
    """Run every experiment (or a subset); returns their results."""
    results = []
    for experiment_id in ids or sorted_ids():
        results.append(REGISTRY[experiment_id]())
    return results


def _experiment_sort_key(experiment_id: str) -> int:
    return experiment_sort_key(experiment_id)
