"""Declarative experiment specifications (the engine's vocabulary).

The paper's methodology (§4) is a *matrix*: every optimization toggled
one at a time across four machine configurations.  An
:class:`ExperimentSpec` captures one such experiment declaratively —
its id, the machine/config variants it boots, the workload that
measures them, the shape predicate over the measured values, and the
paper's reference numbers — so that one engine
(:mod:`repro.analysis.engine`) can boot, observe, check, cache and
parallelize every experiment through a single path instead of sixteen
hand-written runners.

The workload callable returns a :class:`Measurement`; the engine turns
that into an :class:`ExperimentResult` by applying the spec's shape
predicate and attaching the paper values and notes.  Shape predicates
read *only* the measured dict (never closure state), which is what
makes results cacheable: a measured dict that round-trips through JSON
reproduces the same shape verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.kernel.config import KernelConfig
from repro.params import MachineSpec


@dataclass
class ExperimentResult:
    """Outcome of one reproduced experiment."""

    experiment: str
    title: str
    measured: Dict[str, object]
    paper: Dict[str, object]
    shape_holds: bool
    report: str
    notes: str = ""
    #: Observatory analytics (:func:`repro.obs.analytics.derive`) the
    #: engine attaches when executing with ``derive=True``.  Always
    #: JSON-round-tripped before attachment, so a cached result's block
    #: compares equal to a freshly derived one.  Empty when the run was
    #: not derived (plain :func:`~repro.analysis.engine.execute`).
    derived: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ConfigVariant:
    """One (label, machine, kernel-config) cell of a spec's matrix."""

    label: str
    machine: MachineSpec
    config: KernelConfig


@dataclass
class Measurement:
    """What a spec's workload hands back to the engine.

    ``measured`` must be JSON-representable (numbers, strings, bools,
    lists, string-keyed dicts): the engine round-trips it through JSON
    so cached and freshly-computed results are indistinguishable.
    """

    measured: Dict[str, object]
    lines: List[str]


#: A workload measures the spec's variants and returns the raw numbers.
#: It receives the spec itself (for ``spec.variants``) plus any
#: experiment-specific parameters (trace sizes, iteration counts, ...).
Workload = Callable[..., Measurement]

#: A shape predicate decides the paper's qualitative claim from the
#: measured dict alone.
ShapePredicate = Callable[[Dict[str, object]], bool]


@dataclass
class ExperimentSpec:
    """One declarative experiment: the unit the engine executes."""

    #: Registry id (``E1`` .. ``E16``), matching DESIGN.md's index.
    id: str
    #: Human title, e.g. ``"Table 2: lazy VSID flushing"``.
    title: str
    #: Paper reference (section / table / figure).
    section: str
    #: The machine/config matrix the workload boots, in boot order.
    variants: Tuple[ConfigVariant, ...]
    #: Measures the variants; see :data:`Workload`.
    workload: Workload
    #: The paper's qualitative claim over the measured dict.
    shape: ShapePredicate
    #: The paper's reference values (JSON-representable).
    paper: Dict[str, object]
    #: Deterministic seed recorded in the cache fingerprint.  The
    #: workloads construct their own ``random.Random(seed)`` instances;
    #: this field documents the seed family a spec uses.
    seed: int = 0
    #: Static reproduction caveats, carried into every result.
    notes: str = ""

    def machine_names(self) -> List[str]:
        """Distinct machine names across the variants, in boot order."""
        names: List[str] = []
        for variant in self.variants:
            if variant.machine.name not in names:
                names.append(variant.machine.name)
        return names


@dataclass
class MatrixSpec:
    """A first-class config-matrix sweep (``repro run --matrix NAME``).

    The paper tuned its constants by sweeping them against an
    instrument (§5.2's miss histogram, §7's cutoff); a MatrixSpec
    packages one such sweep — the axis values and the per-point
    measurement — so the tuning process itself runs through the engine
    instead of living in copy-pasted example loops.
    """

    #: Sweep name (``vsid-scatter``, ``flush-cutoff``).
    id: str
    title: str
    #: What the axis varies, for the report header.
    axis: str
    #: Runs the sweep and returns the rendered report.
    run: Callable[[], str]
    notes: str = ""


def experiment_sort_key(experiment_id: str) -> int:
    """Numeric ordering for registry ids (E1, E2, ..., E16)."""
    return int(experiment_id[1:])
