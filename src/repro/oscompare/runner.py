"""Run the Table 3 comparison (§11).

"All tests except AIX performed on a 133MHz 604 PowerMac 9500" — every
profile runs on the same :data:`~repro.params.M604_133` machine model
(AIX's 43P had the same CPU at the same clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.oscompare.profiles import OsProfile, TABLE3_PROFILES
from repro.params import M604_133, MachineSpec
from repro.sim.simulator import Simulator
from repro.workloads.lmbench import (
    context_switch,
    null_syscall,
    pipe_bandwidth,
    pipe_latency,
)


@dataclass
class Table3Row:
    """One OS column of Table 3."""

    os: str
    null_syscall_us: float
    ctxsw_us: float
    pipe_latency_us: float
    pipe_bw_mb_s: float


def run_table3(
    profiles: Iterable[OsProfile] = TABLE3_PROFILES,
    spec: MachineSpec = M604_133,
) -> List[Table3Row]:
    """Measure the four Table-3 points for each OS profile."""
    rows = []
    for profile in profiles:
        def make_sim():
            return Simulator(spec, profile.config)

        rows.append(
            Table3Row(
                os=profile.name,
                null_syscall_us=null_syscall(make_sim()),
                ctxsw_us=context_switch(make_sim(), nproc=2),
                pipe_latency_us=pipe_latency(make_sim()),
                pipe_bw_mb_s=pipe_bandwidth(make_sim()),
            )
        )
    return rows


#: The numbers printed in the paper's Table 3, for comparison output.
PAPER_TABLE3 = {
    "Linux/PPC": (2, 6, 28, 52),
    "Unoptimized Linux/PPC": (18, 28, 78, 36),
    "Rhapsody 5.0": (15, 64, 161, 9),
    "MkLinux": (19, 64, 235, 15),
    "AIX": (11, 24, 89, 21),
}
