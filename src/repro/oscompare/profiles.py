"""Cost profiles for the operating systems of Table 3 (§11).

The two Linux columns are *produced by the simulator* — they are just the
optimized and unoptimized kernel configurations.  The commercial systems
are modelled as cost profiles on the same hardware model:

* **Rhapsody** and **MkLinux** are Mach-based: every UNIX syscall is a
  message to a server, pipes cross address spaces through the Mach port
  machinery (double copies through the server), and a context switch
  drags the Mach thread/port state with it.  These are exactly the
  overheads Liedtke's and the paper's microkernel discussion attribute
  to first-generation microkernels.
* **AIX** is monolithic but carries heavier syscall entry (full state
  save, auditing hooks) and a heavier dispatcher than the optimized
  Linux paths — competitive, but not lean.

Each profile's fixed path costs were set once against Table 3's
unoptimized-Linux column relationships and are never tuned per
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.config import KernelConfig, VsidPolicy


@dataclass(frozen=True)
class OsProfile:
    """One Table-3 column: a name plus the kernel configuration."""

    name: str
    config: KernelConfig
    #: True for the columns the simulator produces without a cost model
    #: (the two Linux kernels).
    native: bool = False


#: The paper's kernel with every optimization (the "Linux/PPC" column).
LINUX_PPC = OsProfile(
    name="Linux/PPC",
    config=KernelConfig.optimized(),
    native=True,
)

#: The original kernel (the "Unoptimized Linux/PPC" column).
LINUX_PPC_UNOPTIMIZED = OsProfile(
    name="Unoptimized Linux/PPC",
    config=KernelConfig.unoptimized(),
    native=True,
)

#: Rhapsody 5.0: Mach kernel with the BSD server.  Slightly leaner trap
#: path than MkLinux, much heavier switches and IPC.
RHAPSODY = OsProfile(
    name="Rhapsody 5.0",
    config=KernelConfig(
        vsid_policy=VsidPolicy.PID_SCATTER,
        syscall_entry_cycles=1650,
        ctxsw_cycles=7600,
        pipe_op_extra_cycles=5600,
        pipe_copy_multiplier=6,
    ),
)

#: MkLinux: the Linux server on Mach (OSF MK).
MKLINUX = OsProfile(
    name="MkLinux",
    config=KernelConfig(
        vsid_policy=VsidPolicy.PID_SCATTER,
        syscall_entry_cycles=2250,
        ctxsw_cycles=7600,
        pipe_op_extra_cycles=10500,
        pipe_copy_multiplier=1,
    ),
)

#: AIX 4.x on the 43P: monolithic, heavier entry/dispatch than Linux.
AIX = OsProfile(
    name="AIX",
    config=KernelConfig(
        vsid_policy=VsidPolicy.PID_SCATTER,
        syscall_entry_cycles=1430,
        ctxsw_cycles=3000,
        pipe_op_extra_cycles=1800,
        pipe_copy_multiplier=2,
    ),
)

#: The five columns of Table 3, in the paper's order.
TABLE3_PROFILES = (
    LINUX_PPC,
    LINUX_PPC_UNOPTIMIZED,
    RHAPSODY,
    MKLINUX,
    AIX,
)
