"""Table 3's operating-system comparison (§11)."""

from repro.oscompare.profiles import (
    AIX,
    LINUX_PPC,
    LINUX_PPC_UNOPTIMIZED,
    MKLINUX,
    OsProfile,
    RHAPSODY,
    TABLE3_PROFILES,
)
from repro.oscompare.runner import Table3Row, run_table3

__all__ = [
    "AIX",
    "LINUX_PPC",
    "LINUX_PPC_UNOPTIMIZED",
    "MKLINUX",
    "OsProfile",
    "RHAPSODY",
    "TABLE3_PROFILES",
    "Table3Row",
    "run_table3",
]
