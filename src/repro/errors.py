"""Exception hierarchy for the MMU-tricks reproduction.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulation failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A machine or kernel configuration is internally inconsistent."""


class TranslationError(ReproError):
    """An address could not be translated and no handler recovered it."""

    def __init__(self, ea, message=""):
        self.ea = ea
        detail = message or "unhandled translation fault"
        super().__init__(f"{detail} (ea=0x{ea:08x})")


class ProtectionFault(TranslationError):
    """Access violated page protection (e.g. write to read-only page)."""

    def __init__(self, ea, message="protection fault"):
        super().__init__(ea, message)


class SegmentFault(TranslationError):
    """Access hit a segment with no valid mapping context."""

    def __init__(self, ea, message="segmentation fault"):
        super().__init__(ea, message)


class OutOfMemoryError(ReproError):
    """The simulated physical page allocator is exhausted."""


class KernelPanic(ReproError):
    """An invariant the simulated kernel relies on was violated."""


class SyscallError(ReproError):
    """A simulated system call was invoked with invalid arguments."""

    def __init__(self, name, message):
        self.syscall = name
        super().__init__(f"{name}: {message}")
